#include "bt/piece_store.hpp"

#include "util/assert.hpp"

namespace wp2p::bt {

PieceStore::PieceStore(const Metainfo& meta)
    : meta_{&meta}, have_{meta.piece_count()} {}

int PieceStore::blocks_in_piece(int piece) const {
  const std::int64_t size = meta_->piece_size(piece);
  return static_cast<int>((size + kBlockSize - 1) / kBlockSize);
}

std::int64_t PieceStore::block_size(int piece, int block) const {
  const std::int64_t piece_size = meta_->piece_size(piece);
  const std::int64_t start = static_cast<std::int64_t>(block) * kBlockSize;
  WP2P_ASSERT(start < piece_size);
  const std::int64_t remain = piece_size - start;
  return remain < kBlockSize ? remain : kBlockSize;
}

bool PieceStore::has_block(int piece, int block) const {
  if (have_.test(piece)) return true;
  auto it = partial_.find(piece);
  if (it == partial_.end()) return false;
  WP2P_ASSERT(block >= 0 && block < static_cast<int>(it->second.size()));
  return it->second[static_cast<std::size_t>(block)];
}

bool PieceStore::mark_block(int piece, int block) {
  WP2P_ASSERT(piece >= 0 && piece < piece_count());
  if (have_.test(piece)) return false;  // duplicate delivery of a finished piece
  auto [it, inserted] =
      partial_.try_emplace(piece, static_cast<std::size_t>(blocks_in_piece(piece)), false);
  auto& blocks = it->second;
  WP2P_ASSERT(block >= 0 && block < static_cast<int>(blocks.size()));
  if (blocks[static_cast<std::size_t>(block)]) return false;  // duplicate block
  blocks[static_cast<std::size_t>(block)] = true;
  bytes_completed_ += block_size(piece, block);
  for (bool b : blocks) {
    if (!b) return false;
  }
  // Piece complete: "verify" and promote to the bitfield.
  partial_.erase(it);
  have_.set(piece);
  return true;
}

void PieceStore::mark_piece(int piece) {
  WP2P_ASSERT(piece >= 0 && piece < piece_count());
  if (have_.test(piece)) return;
  // Count only bytes not already counted through partial blocks.
  std::int64_t already = 0;
  if (auto it = partial_.find(piece); it != partial_.end()) {
    for (int b = 0; b < static_cast<int>(it->second.size()); ++b) {
      if (it->second[static_cast<std::size_t>(b)]) already += block_size(piece, b);
    }
    partial_.erase(it);
  }
  bytes_completed_ += meta_->piece_size(piece) - already;
  have_.set(piece);
}

void PieceStore::mark_all() {
  for (int i = 0; i < piece_count(); ++i) mark_piece(i);
}

std::int64_t PieceStore::contiguous_bytes() const {
  std::int64_t bytes = 0;
  int piece = 0;
  while (piece < piece_count() && have_.test(piece)) {
    bytes += meta_->piece_size(piece);
    ++piece;
  }
  if (piece < piece_count()) {
    if (auto it = partial_.find(piece); it != partial_.end()) {
      for (int b = 0; b < static_cast<int>(it->second.size()); ++b) {
        if (!it->second[static_cast<std::size_t>(b)]) break;
        bytes += block_size(piece, b);
      }
    }
  }
  return bytes;
}

std::vector<int> PieceStore::missing_blocks(int piece) const {
  std::vector<int> missing;
  if (have_.test(piece)) return missing;
  auto it = partial_.find(piece);
  const int n = blocks_in_piece(piece);
  for (int b = 0; b < n; ++b) {
    const bool got = it != partial_.end() && it->second[static_cast<std::size_t>(b)];
    if (!got) missing.push_back(b);
  }
  return missing;
}

}  // namespace wp2p::bt
