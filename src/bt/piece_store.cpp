#include "bt/piece_store.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace wp2p::bt {

PieceStore::PieceStore(const Metainfo& meta)
    : meta_{&meta}, have_{meta.piece_count()} {}

int PieceStore::blocks_in_piece(int piece) const {
  const std::int64_t size = meta_->piece_size(piece);
  return static_cast<int>((size + kBlockSize - 1) / kBlockSize);
}

std::int64_t PieceStore::block_size(int piece, int block) const {
  const std::int64_t piece_size = meta_->piece_size(piece);
  const std::int64_t start = static_cast<std::int64_t>(block) * kBlockSize;
  WP2P_ASSERT(start < piece_size);
  const std::int64_t remain = piece_size - start;
  return remain < kBlockSize ? remain : kBlockSize;
}

bool PieceStore::has_block(int piece, int block) const {
  if (have_.test(piece)) return true;
  auto it = partial_.find(piece);
  if (it == partial_.end()) return false;
  WP2P_ASSERT(block >= 0 && block < static_cast<int>(it->second.blocks.size()));
  return it->second.blocks[static_cast<std::size_t>(block)];
}

BlockResult PieceStore::mark_block(int piece, int block, bool corrupt) {
  WP2P_ASSERT(piece >= 0 && piece < piece_count());
  if (have_.test(piece)) {
    // Duplicate delivery of a finished piece (late endgame copy).
    wasted_bytes_ += block_size(piece, block);
    return BlockResult::kDuplicate;
  }
  auto [it, inserted] = partial_.try_emplace(piece);
  Partial& p = it->second;
  if (inserted) {
    p.blocks.assign(static_cast<std::size_t>(blocks_in_piece(piece)), false);
    p.corrupt.assign(p.blocks.size(), false);
    p.digest = meta_->piece_hash(piece);
  }
  WP2P_ASSERT(block >= 0 && block < static_cast<int>(p.blocks.size()));
  const auto idx = static_cast<std::size_t>(block);
  if (p.blocks[idx]) {
    wasted_bytes_ += block_size(piece, block);
    return BlockResult::kDuplicate;
  }
  p.blocks[idx] = true;
  if (corrupt) {
    p.corrupt[idx] = true;
    p.digest ^= meta_->block_tag(piece, block);
  }
  bytes_completed_ += block_size(piece, block);
  for (bool b : p.blocks) {
    if (!b) return BlockResult::kAccepted;
  }
  if (p.digest != meta_->piece_hash(piece)) {
    // Verification failed: throw the whole piece away so it re-enters the
    // selector as missing. Every byte of it was wasted transfer.
    last_corrupt_blocks_.clear();
    for (std::size_t b = 0; b < p.corrupt.size(); ++b) {
      if (p.corrupt[b]) last_corrupt_blocks_.push_back(static_cast<int>(b));
    }
    bytes_completed_ -= meta_->piece_size(piece);
    wasted_bytes_ += meta_->piece_size(piece);
    ++corrupt_pieces_detected_;
    partial_.erase(it);
    return BlockResult::kPieceCorrupt;
  }
  // Piece complete: digest verified, promote to the bitfield.
  partial_.erase(it);
  have_.set(piece);
  return BlockResult::kPieceComplete;
}

void PieceStore::mark_piece(int piece) {
  WP2P_ASSERT(piece >= 0 && piece < piece_count());
  if (have_.test(piece)) return;
  // Count only bytes not already counted through partial blocks.
  std::int64_t already = 0;
  if (auto it = partial_.find(piece); it != partial_.end()) {
    for (int b = 0; b < static_cast<int>(it->second.blocks.size()); ++b) {
      if (it->second.blocks[static_cast<std::size_t>(b)]) already += block_size(piece, b);
    }
    partial_.erase(it);
  }
  bytes_completed_ += meta_->piece_size(piece) - already;
  have_.set(piece);
}

void PieceStore::mark_all() {
  for (int i = 0; i < piece_count(); ++i) mark_piece(i);
}

std::vector<PieceStore::PartialState> PieceStore::export_partials() const {
  std::vector<PartialState> out;
  out.reserve(partial_.size());
  for (const auto& [piece, p] : partial_) {
    out.push_back(PartialState{piece, p.blocks, p.corrupt});
  }
  // Map order is unspecified; sort so a snapshot is a deterministic function
  // of the store's state.
  std::sort(out.begin(), out.end(),
            [](const PartialState& a, const PartialState& b) { return a.piece < b.piece; });
  return out;
}

void PieceStore::restore_partial(const PartialState& state) {
  WP2P_ASSERT(state.piece >= 0 && state.piece < piece_count());
  if (have_.test(state.piece)) return;
  const auto n = static_cast<std::size_t>(blocks_in_piece(state.piece));
  if (state.blocks.size() != n || state.corrupt.size() != n) return;  // stale shape
  auto [it, inserted] = partial_.try_emplace(state.piece);
  Partial& p = it->second;
  if (!inserted) {
    // Restoring over live state would double-count bytes; resume happens
    // into a fresh store, so just keep what is already there.
    return;
  }
  p.blocks = state.blocks;
  p.corrupt = state.corrupt;
  // Rebuild the digest the in-flight accumulation would have produced: the
  // expected hash perturbed once per damaged block. A corrupt partial
  // restored this way still fails verification when it completes.
  p.digest = meta_->piece_hash(state.piece);
  for (std::size_t b = 0; b < n; ++b) {
    if (p.corrupt[b]) p.digest ^= meta_->block_tag(state.piece, static_cast<int>(b));
    if (p.blocks[b]) bytes_completed_ += block_size(state.piece, static_cast<int>(b));
  }
}

void PieceStore::drop_piece(int piece) {
  WP2P_ASSERT(piece >= 0 && piece < piece_count());
  if (!have_.test(piece)) return;
  have_.reset(piece);
  bytes_completed_ -= meta_->piece_size(piece);
}

std::int64_t PieceStore::contiguous_bytes() const {
  std::int64_t bytes = 0;
  int piece = 0;
  while (piece < piece_count() && have_.test(piece)) {
    bytes += meta_->piece_size(piece);
    ++piece;
  }
  if (piece < piece_count()) {
    if (auto it = partial_.find(piece); it != partial_.end()) {
      for (int b = 0; b < static_cast<int>(it->second.blocks.size()); ++b) {
        if (!it->second.blocks[static_cast<std::size_t>(b)]) break;
        bytes += block_size(piece, b);
      }
    }
  }
  return bytes;
}

std::vector<int> PieceStore::missing_blocks(int piece) const {
  std::vector<int> missing;
  if (have_.test(piece)) return missing;
  auto it = partial_.find(piece);
  const int n = blocks_in_piece(piece);
  for (int b = 0; b < n; ++b) {
    const bool got = it != partial_.end() && it->second.blocks[static_cast<std::size_t>(b)];
    if (!got) missing.push_back(b);
  }
  return missing;
}

}  // namespace wp2p::bt
