// BitTorrent peer wire protocol messages.
//
// Messages travel as framed application messages over the simulated TCP
// stream; wire_size() reproduces the real protocol's encoded lengths so the
// traffic mix (tiny control messages vs 16 KiB piece payloads) is faithful.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bt/bitfield.hpp"
#include "bt/metainfo.hpp"
#include "net/address.hpp"
#include "util/pool.hpp"

namespace wp2p::bt {

enum class MsgType {
  kHandshake,
  kKeepAlive,
  kChoke,
  kUnchoke,
  kInterested,
  kNotInterested,
  kHave,
  kBitfield,
  kRequest,
  kPiece,
  kCancel,
  kPex,  // extension message (BEP 10 id 20): added/dropped peer-endpoint deltas
};

// One gossiped peer in a PEX added-list: where it listens and who it is. The
// peer-id rides along (real ut_pex carries flags instead) so receivers can
// refuse endpoints belonging to banned identities before ever dialing them.
struct PexPeer {
  net::Endpoint endpoint;
  PeerId peer_id = 0;

  bool operator==(const PexPeer&) const = default;
};

const char* to_string(MsgType type);

struct WireMessage {
  MsgType type{};
  // kHandshake
  InfoHash info_hash = 0;
  PeerId peer_id = 0;
  // kHandshake: the sender's listen port, stashed in the reserved bytes the
  // way real clients advertise extension support there (BEP 10). Zero means
  // "not conveyed" — receivers then fall back to tracker/PEX knowledge.
  std::uint16_t listen_port = 0;
  // kHave / kRequest / kPiece / kCancel
  int piece = -1;
  std::int64_t offset = 0;
  std::int64_t length = 0;
  // kBitfield
  Bitfield bitfield;
  // kPex
  std::vector<PexPeer> pex_added;
  std::vector<net::Endpoint> pex_dropped;

  // Encoded size in bytes, per BEP 3's framing.
  std::int64_t wire_size() const {
    switch (type) {
      case MsgType::kHandshake: return 68;  // pstrlen + pstr + reserved + hash + id
      case MsgType::kKeepAlive: return 4;
      case MsgType::kChoke:
      case MsgType::kUnchoke:
      case MsgType::kInterested:
      case MsgType::kNotInterested: return 5;
      case MsgType::kHave: return 9;
      case MsgType::kBitfield: return 5 + bitfield.byte_size();
      case MsgType::kRequest:
      case MsgType::kCancel: return 17;
      case MsgType::kPiece: return 13 + length;
      case MsgType::kPex:
        // len + id + ext-id + two u16 counts, then 4+2+8 per added entry
        // (addr, port, peer-id) and 4+2 per dropped endpoint.
        return 10 + 14 * static_cast<std::int64_t>(pex_added.size()) +
               6 * static_cast<std::int64_t>(pex_dropped.size());
    }
    return 4;
  }

  // All factories allocate through a pooled allocator: message churn dominates
  // simulator allocations at scale, and allocate_shared puts the control block
  // and payload in a single recycled block (see util/pool.hpp).
  static std::shared_ptr<WireMessage> alloc() {
    return std::allocate_shared<WireMessage>(util::PoolAllocator<WireMessage>{});
  }

  static std::shared_ptr<const WireMessage> handshake(InfoHash hash, PeerId id,
                                                      std::uint16_t listen_port = 0) {
    auto m = alloc();
    m->type = MsgType::kHandshake;
    m->info_hash = hash;
    m->peer_id = id;
    m->listen_port = listen_port;
    return m;
  }
  static std::shared_ptr<const WireMessage> simple(MsgType type) {
    auto m = alloc();
    m->type = type;
    return m;
  }
  static std::shared_ptr<const WireMessage> have(int piece) {
    auto m = alloc();
    m->type = MsgType::kHave;
    m->piece = piece;
    return m;
  }
  static std::shared_ptr<const WireMessage> bitfield_msg(Bitfield bf) {
    auto m = alloc();
    m->type = MsgType::kBitfield;
    m->bitfield = std::move(bf);
    return m;
  }
  static std::shared_ptr<const WireMessage> request(int piece, std::int64_t offset,
                                                    std::int64_t length) {
    auto m = alloc();
    m->type = MsgType::kRequest;
    m->piece = piece;
    m->offset = offset;
    m->length = length;
    return m;
  }
  static std::shared_ptr<const WireMessage> cancel(int piece, std::int64_t offset,
                                                   std::int64_t length) {
    auto m = alloc();
    m->type = MsgType::kCancel;
    m->piece = piece;
    m->offset = offset;
    m->length = length;
    return m;
  }
  static std::shared_ptr<const WireMessage> piece_msg(int piece, std::int64_t offset,
                                                      std::int64_t length) {
    auto m = alloc();
    m->type = MsgType::kPiece;
    m->piece = piece;
    m->offset = offset;
    m->length = length;
    return m;
  }
  static std::shared_ptr<const WireMessage> pex(std::vector<PexPeer> added,
                                                std::vector<net::Endpoint> dropped) {
    auto m = alloc();
    m->type = MsgType::kPex;
    m->pex_added = std::move(added);
    m->pex_dropped = std::move(dropped);
    return m;
  }
};

// Hostile-input hardening caps, shared by the byte decoder and the
// struct-level validator. A declared frame body larger than kMaxFrameBody is
// rejected before anything is allocated from it; request lengths above
// kMaxRequestLength (the customary real-client cap) and PEX messages with
// more than kMaxPexEntries combined entries are malformed.
inline constexpr std::int64_t kMaxFrameBody = 1 << 20;
inline constexpr std::int64_t kMaxRequestLength = 128 * 1024;
inline constexpr std::size_t kMaxPexEntries = 4096;

// Struct-level malformation check for messages travelling as structs through
// the simulated stream (the hot path never byte-encodes). Returns a short
// reason for a hostile frame — out-of-range indexes, lengths beyond the
// piece or the caps above, a bitfield sized for a different torrent, a PEX
// body over the entry cap — or nullptr when `msg` is well formed for `meta`.
const char* malformed_reason(const WireMessage& msg, const Metainfo& meta);

// BEP 3 byte encoding. The simulation moves WireMessage structs directly, but
// the encoder/decoder keep the model honest: encode() emits the real framing
// (big-endian u32 length prefix, one-byte message id, 68-byte handshake) and
// decode() parses it back. The 64-bit simulated info-hash / peer-id occupy the
// trailing 8 bytes of the real protocol's 20-byte fields (the rest are zero),
// and piece payloads are zero bytes of the declared length.
std::string encode(const WireMessage& msg);

// Decodes exactly one message occupying the whole buffer. `bitfield_bits`
// gives the piece count for kBitfield bodies (the wire format doesn't carry
// it); pass <0 to default to 8 bits per body byte. Returns nullopt on any
// malformed input: truncated buffers, trailing bytes, unknown ids, bad
// handshake magic, bitfield spare bits set, a length prefix that disagrees
// with its body, a declared body over kMaxFrameBody, or a PEX body over
// kMaxPexEntries.
std::optional<WireMessage> decode(std::string_view bytes, int bitfield_bits = -1);

}  // namespace wp2p::bt
