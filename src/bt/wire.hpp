// BitTorrent peer wire protocol messages.
//
// Messages travel as framed application messages over the simulated TCP
// stream; wire_size() reproduces the real protocol's encoded lengths so the
// traffic mix (tiny control messages vs 16 KiB piece payloads) is faithful.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "bt/bitfield.hpp"
#include "bt/metainfo.hpp"

namespace wp2p::bt {

enum class MsgType {
  kHandshake,
  kKeepAlive,
  kChoke,
  kUnchoke,
  kInterested,
  kNotInterested,
  kHave,
  kBitfield,
  kRequest,
  kPiece,
  kCancel,
};

const char* to_string(MsgType type);

struct WireMessage {
  MsgType type{};
  // kHandshake
  InfoHash info_hash = 0;
  PeerId peer_id = 0;
  // kHave / kRequest / kPiece / kCancel
  int piece = -1;
  std::int64_t offset = 0;
  std::int64_t length = 0;
  // kBitfield
  Bitfield bitfield;

  // Encoded size in bytes, per BEP 3's framing.
  std::int64_t wire_size() const {
    switch (type) {
      case MsgType::kHandshake: return 68;  // pstrlen + pstr + reserved + hash + id
      case MsgType::kKeepAlive: return 4;
      case MsgType::kChoke:
      case MsgType::kUnchoke:
      case MsgType::kInterested:
      case MsgType::kNotInterested: return 5;
      case MsgType::kHave: return 9;
      case MsgType::kBitfield: return 5 + bitfield.byte_size();
      case MsgType::kRequest:
      case MsgType::kCancel: return 17;
      case MsgType::kPiece: return 13 + length;
    }
    return 4;
  }

  static std::shared_ptr<const WireMessage> handshake(InfoHash hash, PeerId id) {
    auto m = std::make_shared<WireMessage>();
    m->type = MsgType::kHandshake;
    m->info_hash = hash;
    m->peer_id = id;
    return m;
  }
  static std::shared_ptr<const WireMessage> simple(MsgType type) {
    auto m = std::make_shared<WireMessage>();
    m->type = type;
    return m;
  }
  static std::shared_ptr<const WireMessage> have(int piece) {
    auto m = std::make_shared<WireMessage>();
    m->type = MsgType::kHave;
    m->piece = piece;
    return m;
  }
  static std::shared_ptr<const WireMessage> bitfield_msg(Bitfield bf) {
    auto m = std::make_shared<WireMessage>();
    m->type = MsgType::kBitfield;
    m->bitfield = std::move(bf);
    return m;
  }
  static std::shared_ptr<const WireMessage> request(int piece, std::int64_t offset,
                                                    std::int64_t length) {
    auto m = std::make_shared<WireMessage>();
    m->type = MsgType::kRequest;
    m->piece = piece;
    m->offset = offset;
    m->length = length;
    return m;
  }
  static std::shared_ptr<const WireMessage> cancel(int piece, std::int64_t offset,
                                                   std::int64_t length) {
    auto m = std::make_shared<WireMessage>();
    m->type = MsgType::kCancel;
    m->piece = piece;
    m->offset = offset;
    m->length = length;
    return m;
  }
  static std::shared_ptr<const WireMessage> piece_msg(int piece, std::int64_t offset,
                                                      std::int64_t length) {
    auto m = std::make_shared<WireMessage>();
    m->type = MsgType::kPiece;
    m->piece = piece;
    m->offset = offset;
    m->length = length;
    return m;
  }
};

// BEP 3 byte encoding. The simulation moves WireMessage structs directly, but
// the encoder/decoder keep the model honest: encode() emits the real framing
// (big-endian u32 length prefix, one-byte message id, 68-byte handshake) and
// decode() parses it back. The 64-bit simulated info-hash / peer-id occupy the
// trailing 8 bytes of the real protocol's 20-byte fields (the rest are zero),
// and piece payloads are zero bytes of the declared length.
std::string encode(const WireMessage& msg);

// Decodes exactly one message occupying the whole buffer. `bitfield_bits`
// gives the piece count for kBitfield bodies (the wire format doesn't carry
// it); pass <0 to default to 8 bits per body byte. Returns nullopt on any
// malformed input: truncated buffers, trailing bytes, unknown ids, bad
// handshake magic, bitfield spare bits set, or a length prefix that
// disagrees with its body.
std::optional<WireMessage> decode(std::string_view bytes, int bitfield_bits = -1);

}  // namespace wp2p::bt
