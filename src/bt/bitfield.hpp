// Piece-presence bitfield (the BitTorrent "bitfield" message body).
//
// Backed by 64-bit words so piece bookkeeping scales: interest tests,
// candidate collection, and prefix scans run word-at-a-time instead of
// bit-at-a-time. The wire encoding (byte_size, MSB-first bytes) is unchanged —
// serialization goes through test(), not the storage layout.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace wp2p::bt {

class Bitfield {
 public:
  Bitfield() = default;
  explicit Bitfield(int size)
      : size_{size}, words_(static_cast<std::size_t>((size + 63) / 64), 0) {
    WP2P_ASSERT(size >= 0);
  }

  int size() const { return size_; }
  int count() const { return count_; }
  bool empty() const { return size_ == 0; }
  bool all() const { return count_ == size_; }
  bool none() const { return count_ == 0; }

  bool test(int i) const {
    check(i);
    return (words_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1;
  }

  void set(int i) {
    check(i);
    std::uint64_t& word = words_[static_cast<std::size_t>(i >> 6)];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (!(word & mask)) {
      word |= mask;
      ++count_;
    }
  }

  void reset(int i) {
    check(i);
    std::uint64_t& word = words_[static_cast<std::size_t>(i >> 6)];
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    if (word & mask) {
      word &= ~mask;
      --count_;
    }
  }

  void set_all() {
    if (size_ == 0) return;
    std::fill(words_.begin(), words_.end(), ~std::uint64_t{0});
    const int tail = size_ & 63;
    if (tail != 0) words_.back() = (std::uint64_t{1} << tail) - 1;
    count_ = size_;
  }

  void clear() {
    std::fill(words_.begin(), words_.end(), 0);
    count_ = 0;
  }

  // Word-level access for bulk set operations (candidate collection computes
  // peer & ~mine & ~active one word at a time). Bits past size() are zero.
  int word_count() const { return static_cast<int>(words_.size()); }
  std::uint64_t word(int w) const { return words_[static_cast<std::size_t>(w)]; }

  // First index not set, or -1 when complete.
  int first_missing() const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      const std::uint64_t missing = ~words_[w];
      if (missing != 0) {
        const int i = static_cast<int>(w) * 64 + std::countr_zero(missing);
        return i < size_ ? i : -1;
      }
    }
    return -1;
  }

  // Length of the contiguous set prefix (the playability-relevant quantity).
  int prefix_length() const {
    const int missing = first_missing();
    return missing < 0 ? size_ : missing;
  }

  // True if `peer` has at least one piece that `mine` lacks (interest test).
  static bool has_missing_piece(const Bitfield& peer, const Bitfield& mine) {
    WP2P_ASSERT(peer.size() == mine.size());
    for (std::size_t i = 0; i < peer.words_.size(); ++i) {
      if (peer.words_[i] & ~mine.words_[i]) return true;
    }
    return false;
  }

  // Serialized length of the wire message body.
  std::int64_t byte_size() const { return (size_ + 7) / 8; }

  bool operator==(const Bitfield&) const = default;

 private:
  void check(int i) const { WP2P_ASSERT_MSG(i >= 0 && i < size_, "bitfield index"); }

  int size_ = 0;
  int count_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace wp2p::bt
