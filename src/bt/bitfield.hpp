// Piece-presence bitfield (the BitTorrent "bitfield" message body).
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace wp2p::bt {

class Bitfield {
 public:
  Bitfield() = default;
  explicit Bitfield(int size) : size_{size}, bits_(static_cast<std::size_t>((size + 7) / 8), 0) {
    WP2P_ASSERT(size >= 0);
  }

  int size() const { return size_; }
  int count() const { return count_; }
  bool empty() const { return size_ == 0; }
  bool all() const { return count_ == size_; }
  bool none() const { return count_ == 0; }

  bool test(int i) const {
    check(i);
    return (bits_[static_cast<std::size_t>(i >> 3)] >> (i & 7)) & 1;
  }

  void set(int i) {
    check(i);
    std::uint8_t& byte = bits_[static_cast<std::size_t>(i >> 3)];
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (i & 7));
    if (!(byte & mask)) {
      byte |= mask;
      ++count_;
    }
  }

  void reset(int i) {
    check(i);
    std::uint8_t& byte = bits_[static_cast<std::size_t>(i >> 3)];
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (i & 7));
    if (byte & mask) {
      byte &= static_cast<std::uint8_t>(~mask);
      --count_;
    }
  }

  void set_all() {
    for (int i = 0; i < size_; ++i) set(i);
  }

  void clear() {
    std::fill(bits_.begin(), bits_.end(), 0);
    count_ = 0;
  }

  // First index not set, or -1 when complete.
  int first_missing() const {
    for (int i = 0; i < size_; ++i) {
      if (!test(i)) return i;
    }
    return -1;
  }

  // Length of the contiguous set prefix (the playability-relevant quantity).
  int prefix_length() const {
    int n = 0;
    while (n < size_ && test(n)) ++n;
    return n;
  }

  // True if `peer` has at least one piece that `mine` lacks (interest test).
  static bool has_missing_piece(const Bitfield& peer, const Bitfield& mine) {
    WP2P_ASSERT(peer.size() == mine.size());
    for (std::size_t i = 0; i < peer.bits_.size(); ++i) {
      if (peer.bits_[i] & ~mine.bits_[i]) return true;
    }
    return false;
  }

  // Serialized length of the wire message body.
  std::int64_t byte_size() const { return static_cast<std::int64_t>(bits_.size()); }

  bool operator==(const Bitfield&) const = default;

 private:
  void check(int i) const { WP2P_ASSERT_MSG(i >= 0 && i < size_, "bitfield index"); }

  int size_ = 0;
  int count_ = 0;
  std::vector<std::uint8_t> bits_;
};

}  // namespace wp2p::bt
