// Ordered multi-tracker list with a failover cursor (BEP 12 semantics).
//
// Trackers live in tiers: the primary is tier 0, backups register at higher
// tiers, and slots of equal tier keep registration order. The client
// announces to current(); on failure it advances the cursor down the tier
// list (wrapping), on the first success at a backup it promotes that tracker
// to the head of its tier, and a probe of the primary moves the cursor home
// via failback(). The list only reorders within a tier — a tier never
// outranks a lower one.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace wp2p::bt {

class Tracker;

class TrackerList {
 public:
  struct Slot {
    Tracker* tracker;
    int tier;
  };

  explicit TrackerList(Tracker& primary) { slots_.push_back({&primary, 0}); }

  // Registers `tracker` after the existing members of its tier.
  void add(Tracker& tracker, int tier) {
    auto it = slots_.end();
    while (it != slots_.begin() && (it - 1)->tier > tier) --it;
    slots_.insert(it, Slot{&tracker, tier});
  }

  std::size_t size() const { return slots_.size(); }
  std::size_t cursor() const { return cursor_; }
  int tier_of(std::size_t index) const { return slots_[index].tier; }
  Tracker& current() const { return *slots_[cursor_].tracker; }
  Tracker& primary() const { return *slots_.front().tracker; }

  // Moves the cursor to the next tracker (wrapping); returns the new cursor.
  std::size_t advance() {
    cursor_ = (cursor_ + 1) % slots_.size();
    return cursor_;
  }

  // Moves the current tracker to the head of its tier segment; the cursor
  // follows it. No-op when it already leads its tier.
  void promote_current() {
    const int tier = slots_[cursor_].tier;
    std::size_t head = 0;
    while (head < cursor_ && slots_[head].tier < tier) ++head;
    if (head == cursor_) return;
    std::rotate(slots_.begin() + static_cast<std::ptrdiff_t>(head),
                slots_.begin() + static_cast<std::ptrdiff_t>(cursor_),
                slots_.begin() + static_cast<std::ptrdiff_t>(cursor_) + 1);
    cursor_ = head;
  }

  // Returns the announce cursor to the primary.
  void failback() { cursor_ = 0; }

 private:
  std::vector<Slot> slots_;
  std::size_t cursor_ = 0;
};

}  // namespace wp2p::bt
