// BitTorrent tracker (directory server).
//
// Substitution note (DESIGN.md): announce traffic is modelled as a
// control-plane RPC with configurable latency rather than an HTTP-over-TCP
// exchange. The paper's effects depend on announce *intervals* (minutes) and
// stale peer lists, not on announce transport dynamics.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "bt/metainfo.hpp"
#include "net/address.hpp"
#include "sim/simulator.hpp"

namespace wp2p::bt {

enum class AnnounceEvent { kStarted, kInterval, kCompleted, kStopped };

struct TrackerPeerInfo {
  net::Endpoint endpoint;
  PeerId peer_id = 0;
  bool seed = false;
};

struct AnnounceRequest {
  InfoHash info_hash = 0;
  net::Endpoint endpoint;  // where the announcer accepts connections
  PeerId peer_id = 0;
  bool seed = false;
  AnnounceEvent event = AnnounceEvent::kInterval;
};

struct TrackerConfig {
  sim::SimTime rpc_latency = sim::milliseconds(150.0);  // one round trip
  int max_peers_returned = 50;  // the usual tracker response size (Section 3.2)
  sim::SimTime peer_ttl = sim::minutes(45.0);  // entries expire without refresh
  // How long an announce to an unreachable tracker takes to fail at the
  // client (connection timeout), so failure is never instantaneous.
  sim::SimTime failure_latency = sim::seconds(3.0);
};

// Outcome of one announce, delivered asynchronously to the announcer. `ok`
// is false when the tracker was unreachable — `peers` is then empty and the
// client decides whether/when to retry.
struct AnnounceResult {
  bool ok = true;
  std::vector<TrackerPeerInfo> peers;
};

// Aggregate counters (test/experiment support; not part of the protocol).
struct TrackerStats {
  std::uint64_t announces = 0;          // accepted and processed
  std::uint64_t dropped_announces = 0;  // swallowed while unreachable
};

class Tracker {
 public:
  using AnnounceCallback = std::function<void(AnnounceResult)>;

  explicit Tracker(sim::Simulator& sim, TrackerConfig config = {})
      : sim_{sim}, config_{config}, rng_{sim.rng().fork()} {}

  Tracker(const Tracker&) = delete;
  Tracker& operator=(const Tracker&) = delete;

  // Register/refresh the announcer and asynchronously return a random subset
  // of other peers in the swarm (empty for kStopped). The callback ALWAYS
  // fires exactly once: with ok=true after rpc_latency on success, or with
  // ok=false after failure_latency when the tracker is unreachable.
  void announce(const AnnounceRequest& request, AnnounceCallback callback);

  // Outage injection (net::FaultInjector's tracker-outage hook): while
  // unreachable the tracker ignores announces — no state change, no peer
  // list — exactly how a dead HTTP tracker looks to a client, whose request
  // errors out after a timeout (failure_latency).
  void set_reachable(bool reachable) { reachable_ = reachable; }
  bool reachable() const { return reachable_; }

  // Swarm inspection (test/experiment support; not part of the protocol).
  std::size_t swarm_size(InfoHash hash) const;
  std::size_t seed_count(InfoHash hash) const;
  std::uint64_t announces() const { return stats_.announces; }
  std::uint64_t dropped_announces() const { return stats_.dropped_announces; }
  const TrackerStats& stats() const { return stats_; }

 private:
  struct Entry {
    TrackerPeerInfo info;
    sim::SimTime refreshed = 0;
  };
  struct Swarm {
    std::unordered_map<PeerId, Entry> entries;
    sim::SimTime last_sweep = -1;  // amortized-expiry bookkeeping (large swarms)
  };

  // Swarm size at which per-announce expiry sweeps switch from eager (legacy,
  // trace-exact) to amortized. Well above every pinned scenario so small
  // swarms keep byte-identical behavior.
  static constexpr std::size_t kAmortizedSweepThreshold = 256;

  void expire(Swarm& swarm);
  std::vector<TrackerPeerInfo> select_peers(const Swarm& swarm, PeerId requester);

  sim::Simulator& sim_;
  TrackerConfig config_;
  sim::Rng rng_;
  std::unordered_map<InfoHash, Swarm> swarms_;
  bool reachable_ = true;
  TrackerStats stats_;
};

}  // namespace wp2p::bt
