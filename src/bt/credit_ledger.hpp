// Per-peer-id contribution credit with exponential decay.
//
// Fixed peers remember how much each peer-id has uploaded to them and fold
// that into unchoke ranking. This is what makes BitTorrent identity valuable
// — and what a mobile host loses when a hand-off regenerates its peer-id
// (Section 3.4), and keeps under wP2P identity retention (Section 4.2).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bt/metainfo.hpp"
#include "sim/time.hpp"

namespace wp2p::bt {

class CreditLedger {
 public:
  explicit CreditLedger(sim::SimTime half_life = sim::minutes(10.0))
      : half_life_{half_life} {}

  void add(PeerId peer, sim::SimTime now, std::int64_t bytes) {
    Entry& e = entries_[peer];
    e.value = decayed(e, now) + static_cast<double>(bytes);
    e.updated = now;
  }

  // Current (decayed) credit in bytes for a peer id.
  double credit(PeerId peer, sim::SimTime now) const {
    auto it = entries_.find(peer);
    return it == entries_.end() ? 0.0 : decayed(it->second, now);
  }

  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  // Snapshot/restore surface for the resume layer: credit is the one asset a
  // mobile host carries across a suspend (the paper's identity-value point),
  // so it rides in the resume snapshot alongside the bitfield.
  struct Exported {
    PeerId peer = 0;
    double value = 0.0;
    sim::SimTime updated = 0;
  };
  std::vector<Exported> exported() const {
    std::vector<Exported> out;
    out.reserve(entries_.size());
    for (const auto& [peer, e] : entries_) out.push_back({peer, e.value, e.updated});
    std::sort(out.begin(), out.end(),
              [](const Exported& a, const Exported& b) { return a.peer < b.peer; });
    return out;
  }
  void restore(const Exported& item) {
    Entry& e = entries_[item.peer];
    e.value = item.value;
    e.updated = item.updated;
  }

 private:
  struct Entry {
    double value = 0.0;
    sim::SimTime updated = 0;
  };

  double decayed(const Entry& e, sim::SimTime now) const {
    if (now <= e.updated || half_life_ <= 0) return e.value;
    const double halves =
        static_cast<double>(now - e.updated) / static_cast<double>(half_life_);
    return e.value * std::exp2(-halves);
  }

  sim::SimTime half_life_;
  std::unordered_map<PeerId, Entry> entries_;
};

}  // namespace wp2p::bt
