// Torrent metainfo (.torrent contents).
//
// Single-file torrents only (what the paper's experiments use). Piece hashes
// are simulated: 64-bit FNV-1a values derived from (content id, piece index)
// stand in for SHA-1 digests. There are no payload bytes to hash — instead a
// receiver accumulates the expected piece hash XOR a per-block tag for every
// block delivered corrupt, so a damaged block makes verification fail exactly
// as a real digest mismatch would (see PieceStore::mark_block).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bt/bencode.hpp"

namespace wp2p::bt {

using InfoHash = std::uint64_t;
using PeerId = std::uint64_t;

struct Metainfo {
  std::string name;
  std::string announce;  // symbolic tracker name
  std::int64_t piece_length = 256 * 1024;  // the paper's default piece size
  std::int64_t total_size = 0;
  std::vector<std::uint64_t> piece_hashes;
  InfoHash info_hash = 0;

  int piece_count() const { return static_cast<int>(piece_hashes.size()); }

  std::uint64_t piece_hash(int index) const {
    return piece_hashes[static_cast<std::size_t>(index)];
  }

  // Simulated per-block digest contribution: XORed into a piece's accumulator
  // when block `block` arrives damaged, guaranteeing a hash mismatch.
  std::uint64_t block_tag(int piece, int block) const;

  std::int64_t piece_size(int index) const {
    const std::int64_t start = static_cast<std::int64_t>(index) * piece_length;
    const std::int64_t remain = total_size - start;
    return remain < piece_length ? remain : piece_length;
  }

  // Build a metainfo for synthetic content identified by `content_id`.
  static Metainfo create(std::string name, std::int64_t total_size,
                         std::int64_t piece_length = 256 * 1024,
                         std::string announce = "tracker",
                         std::uint64_t content_id = 0);

  // Bencode round trip (the .torrent file format).
  Bencode to_bencode() const;
  static Metainfo from_bencode(const Bencode& b);
  std::string encode() const { return to_bencode().encode(); }
  static Metainfo decode(const std::string& data) {
    return from_bencode(Bencode::decode(data));
  }
};

// FNV-1a over a byte string; used for simulated piece hashes and info hashes.
std::uint64_t fnv1a(const std::string& data);

}  // namespace wp2p::bt
