#include "bt/resume_store.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace wp2p::bt {

namespace {

void append_line(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

std::string bits_to_string(const std::vector<bool>& bits) {
  std::string s;
  s.reserve(bits.size());
  for (bool b : bits) s += b ? '1' : '0';
  return s;
}

std::optional<std::vector<bool>> bits_from_string(std::string_view s) {
  std::vector<bool> bits;
  bits.reserve(s.size());
  for (char c : s) {
    if (c != '0' && c != '1') return std::nullopt;
    bits.push_back(c == '1');
  }
  return bits;
}

// Splits `line` on single spaces (the serializer never emits doubles).
std::vector<std::string_view> split(std::string_view line) {
  std::vector<std::string_view> tokens;
  while (!line.empty()) {
    const std::size_t sp = line.find(' ');
    if (sp != 0) tokens.push_back(line.substr(0, sp));
    if (sp == std::string_view::npos) break;
    line.remove_prefix(sp + 1);
  }
  return tokens;
}

std::optional<std::string_view> value_of(std::string_view token, std::string_view key) {
  if (token.size() <= key.size() + 1) return std::nullopt;
  if (token.substr(0, key.size()) != key || token[key.size()] != '=') return std::nullopt;
  return token.substr(key.size() + 1);
}

std::optional<std::uint64_t> parse_u64(std::string_view text, int base = 10) {
  const std::string s{text};
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s.c_str(), &end, base);
  if (end == s.c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<double> parse_double(std::string_view text) {
  const std::string s{text};
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') return std::nullopt;
  return v;
}

}  // namespace

std::string ResumeSnapshot::serialize() const {
  std::string out;
  append_line(out, "resume v1 info=%" PRIx64 " peer=%" PRIx64 " at_us=%" PRId64
                   " pieces=%d",
              info_hash, peer_id, taken_at, piece_count);
  if (!have.empty()) {
    out += "have";
    for (int piece : have) {
      out += ' ';
      out += std::to_string(piece);
    }
    out += '\n';
  }
  for (const PieceStore::PartialState& p : partials) {
    append_line(out, "partial piece=%d blocks=%s corrupt=%s", p.piece,
                bits_to_string(p.blocks).c_str(), bits_to_string(p.corrupt).c_str());
  }
  for (const CreditLedger::Exported& c : credit) {
    append_line(out, "credit peer=%" PRIx64 " value=%.17g updated_us=%" PRId64, c.peer,
                c.value, c.updated);
  }
  for (const auto& [peer, count] : strikes) {
    append_line(out, "strike peer=%" PRIx64 " count=%d", peer, count);
  }
  for (PeerId peer : banned) {
    append_line(out, "ban peer=%" PRIx64, peer);
  }
  for (const BootstrapCache::Entry& e : bootstrap) {
    append_line(out, "boot addr=%u port=%u peer=%" PRIx64 " last_us=%" PRId64,
                e.endpoint.addr.value, e.endpoint.port, e.peer_id, e.last_good);
  }
  out += "end\n";
  return out;
}

std::optional<ResumeSnapshot> ResumeSnapshot::parse(std::string_view text) {
  ResumeSnapshot snap;
  bool saw_header = false;
  bool saw_end = false;
  while (!text.empty() && !saw_end) {
    const std::size_t eol = text.find('\n');
    const std::string_view line = text.substr(0, eol);
    if (eol == std::string_view::npos) {
      text = {};
    } else {
      text.remove_prefix(eol + 1);
    }
    if (line.empty()) continue;
    const auto tokens = split(line);
    if (tokens.empty()) continue;
    const std::string_view tag = tokens[0];
    if (tag == "resume") {
      if (tokens.size() != 6 || tokens[1] != "v1") return std::nullopt;
      const auto info = value_of(tokens[2], "info");
      const auto peer = value_of(tokens[3], "peer");
      const auto at = value_of(tokens[4], "at_us");
      const auto pieces = value_of(tokens[5], "pieces");
      if (!info || !peer || !at || !pieces) return std::nullopt;
      const auto info_v = parse_u64(*info, 16);
      const auto peer_v = parse_u64(*peer, 16);
      const auto at_v = parse_u64(*at);
      const auto pieces_v = parse_u64(*pieces);
      if (!info_v || !peer_v || !at_v || !pieces_v) return std::nullopt;
      snap.info_hash = *info_v;
      snap.peer_id = *peer_v;
      snap.taken_at = static_cast<sim::SimTime>(*at_v);
      snap.piece_count = static_cast<int>(*pieces_v);
      saw_header = true;
    } else if (tag == "have") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        const auto v = parse_u64(tokens[i]);
        if (!v) return std::nullopt;
        snap.have.push_back(static_cast<int>(*v));
      }
    } else if (tag == "partial") {
      if (tokens.size() != 4) return std::nullopt;
      const auto piece = value_of(tokens[1], "piece");
      const auto blocks = value_of(tokens[2], "blocks");
      const auto corrupt = value_of(tokens[3], "corrupt");
      if (!piece || !blocks || !corrupt) return std::nullopt;
      const auto piece_v = parse_u64(*piece);
      auto blocks_v = bits_from_string(*blocks);
      auto corrupt_v = bits_from_string(*corrupt);
      if (!piece_v || !blocks_v || !corrupt_v) return std::nullopt;
      if (blocks_v->size() != corrupt_v->size()) return std::nullopt;
      snap.partials.push_back(PieceStore::PartialState{
          static_cast<int>(*piece_v), std::move(*blocks_v), std::move(*corrupt_v)});
    } else if (tag == "credit") {
      if (tokens.size() != 4) return std::nullopt;
      const auto peer = value_of(tokens[1], "peer");
      const auto value = value_of(tokens[2], "value");
      const auto updated = value_of(tokens[3], "updated_us");
      if (!peer || !value || !updated) return std::nullopt;
      const auto peer_v = parse_u64(*peer, 16);
      const auto value_v = parse_double(*value);
      const auto updated_v = parse_u64(*updated);
      if (!peer_v || !value_v || !updated_v) return std::nullopt;
      snap.credit.push_back(CreditLedger::Exported{
          *peer_v, *value_v, static_cast<sim::SimTime>(*updated_v)});
    } else if (tag == "strike") {
      if (tokens.size() != 3) return std::nullopt;
      const auto peer = value_of(tokens[1], "peer");
      const auto count = value_of(tokens[2], "count");
      if (!peer || !count) return std::nullopt;
      const auto peer_v = parse_u64(*peer, 16);
      const auto count_v = parse_u64(*count);
      if (!peer_v || !count_v) return std::nullopt;
      snap.strikes.emplace_back(*peer_v, static_cast<int>(*count_v));
    } else if (tag == "ban") {
      if (tokens.size() != 2) return std::nullopt;
      const auto peer = value_of(tokens[1], "peer");
      if (!peer) return std::nullopt;
      const auto peer_v = parse_u64(*peer, 16);
      if (!peer_v) return std::nullopt;
      snap.banned.push_back(*peer_v);
    } else if (tag == "boot") {
      if (tokens.size() != 5) return std::nullopt;
      const auto addr = value_of(tokens[1], "addr");
      const auto port = value_of(tokens[2], "port");
      const auto peer = value_of(tokens[3], "peer");
      const auto last = value_of(tokens[4], "last_us");
      if (!addr || !port || !peer || !last) return std::nullopt;
      const auto addr_v = parse_u64(*addr);
      const auto port_v = parse_u64(*port);
      const auto peer_v = parse_u64(*peer, 16);
      const auto last_v = parse_u64(*last);
      if (!addr_v || !port_v || !peer_v || !last_v) return std::nullopt;
      BootstrapCache::Entry entry;
      entry.endpoint.addr.value = static_cast<std::uint32_t>(*addr_v);
      entry.endpoint.port = static_cast<std::uint16_t>(*port_v);
      entry.peer_id = *peer_v;
      entry.last_good = static_cast<sim::SimTime>(*last_v);
      snap.bootstrap.push_back(entry);
    } else if (tag == "end") {
      saw_end = true;
    } else {
      return std::nullopt;  // unknown tag: corrupt or future-format snapshot
    }
  }
  // The trailer guards against truncation that happens to keep lines whole.
  if (!saw_header || !saw_end) return std::nullopt;
  return snap;
}

std::uint64_t ResumeStore::save(const ResumeSnapshot& snapshot,
                                std::function<void(std::uint64_t)> done) {
  ++stats_.saves;
  return storage_.append(snapshot.serialize(), std::move(done));
}

std::optional<ResumeStore::Loaded> ResumeStore::load() {
  ++stats_.loads;
  sim::StableStorage::LoadResult result = storage_.load();
  if (!result.record) {
    ++stats_.load_failures;
    return std::nullopt;
  }
  auto snapshot = ResumeSnapshot::parse(result.record->payload);
  if (!snapshot || snapshot->info_hash != info_hash_) {
    // A checksum-valid record that doesn't parse (or belongs to another
    // torrent) is as useless as a torn one: cold start.
    ++stats_.load_failures;
    return std::nullopt;
  }
  Loaded loaded;
  loaded.snapshot = std::move(*snapshot);
  loaded.seq = result.record->seq;
  loaded.discarded = result.discarded;
  return loaded;
}

}  // namespace wp2p::bt
