#include "bt/selector.hpp"

#include <limits>

#include "util/assert.hpp"

namespace wp2p::bt {

int RarestFirstSelector::pick(const SelectionContext& ctx) {
  WP2P_ASSERT(!ctx.candidates.empty());
  int best_avail = std::numeric_limits<int>::max();
  // Reservoir-sample among the rarest to break ties uniformly.
  int chosen = -1;
  int ties = 0;
  for (int piece : ctx.candidates) {
    const int avail = ctx.availability[static_cast<std::size_t>(piece)];
    if (avail < best_avail) {
      best_avail = avail;
      chosen = piece;
      ties = 1;
    } else if (avail == best_avail) {
      ++ties;
      if (ctx.rng.below(static_cast<std::uint64_t>(ties)) == 0) chosen = piece;
    }
  }
  return chosen;
}

int SequentialSelector::pick(const SelectionContext& ctx) {
  WP2P_ASSERT(!ctx.candidates.empty());
  int lowest = ctx.candidates[0];
  for (int piece : ctx.candidates) {
    if (piece < lowest) lowest = piece;
  }
  return lowest;
}

int RandomSelector::pick(const SelectionContext& ctx) {
  WP2P_ASSERT(!ctx.candidates.empty());
  return ctx.candidates[static_cast<std::size_t>(
      ctx.rng.below(ctx.candidates.size()))];
}

int StreamingWindowSelector::pick(const SelectionContext& ctx) {
  WP2P_ASSERT(!ctx.candidates.empty());
  // The playback frontier: the candidate list excludes owned/active pieces,
  // so the lowest candidate approximates the first piece still wanted.
  int frontier = ctx.candidates[0];
  for (int piece : ctx.candidates) frontier = std::min(frontier, piece);
  // In-order within [frontier, frontier + window): lowest candidate wins.
  int best = -1;
  for (int piece : ctx.candidates) {
    if (piece < frontier + window_ && (best < 0 || piece < best)) best = piece;
  }
  if (best >= 0) return best;
  return rarest_.pick(ctx);  // window exhausted for this peer: help the swarm
}

}  // namespace wp2p::bt
