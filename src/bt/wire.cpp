#include "bt/wire.hpp"

#include <cstddef>

namespace wp2p::bt {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kHandshake: return "handshake";
    case MsgType::kKeepAlive: return "keep-alive";
    case MsgType::kChoke: return "choke";
    case MsgType::kUnchoke: return "unchoke";
    case MsgType::kInterested: return "interested";
    case MsgType::kNotInterested: return "not-interested";
    case MsgType::kHave: return "have";
    case MsgType::kBitfield: return "bitfield";
    case MsgType::kRequest: return "request";
    case MsgType::kPiece: return "piece";
    case MsgType::kCancel: return "cancel";
    case MsgType::kPex: return "pex";
  }
  return "?";
}

namespace {

constexpr std::string_view kProtocol = "BitTorrent protocol";

// BEP 3 message ids (no id for keep-alive or the handshake).
constexpr std::uint8_t kIdChoke = 0;
constexpr std::uint8_t kIdUnchoke = 1;
constexpr std::uint8_t kIdInterested = 2;
constexpr std::uint8_t kIdNotInterested = 3;
constexpr std::uint8_t kIdHave = 4;
constexpr std::uint8_t kIdBitfield = 5;
constexpr std::uint8_t kIdRequest = 6;
constexpr std::uint8_t kIdPiece = 7;
constexpr std::uint8_t kIdCancel = 8;
// BEP 10 extension-protocol envelope; PEX rides inside it (BEP 11).
constexpr std::uint8_t kIdExtended = 20;
constexpr std::uint8_t kExtPex = 1;
// Reserved-byte layout in the handshake: real clients set bit 0x10 of
// reserved[5] to advertise BEP 10 support; we reuse the last two reserved
// bytes to carry the sender's listen port (the model's stand-in for the
// extension-handshake dictionary's "p" key).
constexpr std::size_t kReservedAt = 1 + kProtocol.size();
constexpr std::uint8_t kExtensionBit = 0x10;

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v >> 24));
  out.push_back(static_cast<char>(v >> 16));
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v >> 8));
  out.push_back(static_cast<char>(v));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>(v >> shift));
  }
}

// The simulated 64-bit identity in the last 8 bytes of a 20-byte field.
void put_id20(std::string& out, std::uint64_t v) {
  out.append(12, '\0');
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>(v >> shift));
  }
}

std::uint32_t get_u32(std::string_view b, std::size_t at) {
  return (static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[at])) << 24) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[at + 1])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[at + 2])) << 8) |
         static_cast<std::uint32_t>(static_cast<std::uint8_t>(b[at + 3]));
}

std::uint16_t get_u16(std::string_view b, std::size_t at) {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(static_cast<std::uint8_t>(b[at])) << 8) |
      static_cast<std::uint16_t>(static_cast<std::uint8_t>(b[at + 1])));
}

std::uint64_t get_u64(std::string_view b, std::size_t at) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v = (v << 8) | static_cast<std::uint8_t>(b[at + i]);
  }
  return v;
}

std::optional<std::uint64_t> get_id20(std::string_view b, std::size_t at) {
  for (std::size_t i = 0; i < 12; ++i) {
    if (b[at + i] != '\0') return std::nullopt;  // upper bytes must be zero
  }
  std::uint64_t v = 0;
  for (std::size_t i = 12; i < 20; ++i) {
    v = (v << 8) | static_cast<std::uint8_t>(b[at + i]);
  }
  return v;
}

std::optional<WireMessage> decode_handshake(std::string_view bytes) {
  if (bytes.size() != 68 || static_cast<std::uint8_t>(bytes[0]) != kProtocol.size() ||
      bytes.substr(1, kProtocol.size()) != kProtocol) {
    return std::nullopt;
  }
  const auto hash = get_id20(bytes, 28);
  const auto id = get_id20(bytes, 48);
  if (!hash || !id) return std::nullopt;
  WireMessage msg;
  msg.type = MsgType::kHandshake;
  msg.info_hash = *hash;
  msg.peer_id = *id;
  // The listen port rides in the last two reserved bytes iff the extension
  // bit is set; all-zero reserved bytes (pre-extension peers) stay valid.
  if (static_cast<std::uint8_t>(bytes[kReservedAt + 5]) & kExtensionBit) {
    msg.listen_port = get_u16(bytes, kReservedAt + 6);
  }
  return msg;
}

std::optional<WireMessage> decode_pex(std::string_view body) {
  // body: ext-id, u16 added count, u16 dropped count, then the entries.
  if (body.size() < 5 || static_cast<std::uint8_t>(body[0]) != kExtPex) {
    return std::nullopt;
  }
  const std::size_t added = get_u16(body, 1);
  const std::size_t dropped = get_u16(body, 3);
  if (added + dropped > kMaxPexEntries) return std::nullopt;
  if (body.size() != 5 + 14 * added + 6 * dropped) return std::nullopt;
  WireMessage msg;
  msg.type = MsgType::kPex;
  std::size_t at = 5;
  for (std::size_t i = 0; i < added; ++i, at += 14) {
    PexPeer entry;
    entry.endpoint.addr.value = get_u32(body, at);
    entry.endpoint.port = get_u16(body, at + 4);
    entry.peer_id = get_u64(body, at + 6);
    msg.pex_added.push_back(entry);
  }
  for (std::size_t i = 0; i < dropped; ++i, at += 6) {
    net::Endpoint ep;
    ep.addr.value = get_u32(body, at);
    ep.port = get_u16(body, at + 4);
    msg.pex_dropped.push_back(ep);
  }
  return msg;
}

std::optional<WireMessage> decode_bitfield(std::string_view body, int bits) {
  if (bits < 0) bits = static_cast<int>(body.size()) * 8;
  if ((static_cast<std::size_t>(bits) + 7) / 8 != body.size()) return std::nullopt;
  WireMessage msg;
  msg.type = MsgType::kBitfield;
  msg.bitfield = Bitfield{bits};
  for (std::size_t byte = 0; byte < body.size(); ++byte) {
    const auto v = static_cast<std::uint8_t>(body[byte]);
    for (int bit = 0; bit < 8; ++bit) {
      if (!(v & (0x80u >> bit))) continue;
      const int index = static_cast<int>(byte) * 8 + bit;
      if (index >= bits) return std::nullopt;  // spare bits must be zero
      msg.bitfield.set(index);
    }
  }
  return msg;
}

}  // namespace

std::string encode(const WireMessage& msg) {
  std::string out;
  out.reserve(static_cast<std::size_t>(msg.wire_size()));
  switch (msg.type) {
    case MsgType::kHandshake:
      out.push_back(static_cast<char>(kProtocol.size()));
      out += kProtocol;
      out.append(5, '\0');  // reserved/extension bits
      if (msg.listen_port != 0) {
        out.push_back(static_cast<char>(kExtensionBit));
        put_u16(out, msg.listen_port);
      } else {
        out.append(3, '\0');
      }
      put_id20(out, msg.info_hash);
      put_id20(out, msg.peer_id);
      break;
    case MsgType::kKeepAlive:
      put_u32(out, 0);
      break;
    case MsgType::kChoke:
    case MsgType::kUnchoke:
    case MsgType::kInterested:
    case MsgType::kNotInterested: {
      put_u32(out, 1);
      const std::uint8_t id = msg.type == MsgType::kChoke       ? kIdChoke
                              : msg.type == MsgType::kUnchoke   ? kIdUnchoke
                              : msg.type == MsgType::kInterested ? kIdInterested
                                                                 : kIdNotInterested;
      out.push_back(static_cast<char>(id));
      break;
    }
    case MsgType::kHave:
      put_u32(out, 5);
      out.push_back(static_cast<char>(kIdHave));
      put_u32(out, static_cast<std::uint32_t>(msg.piece));
      break;
    case MsgType::kBitfield: {
      put_u32(out, static_cast<std::uint32_t>(1 + msg.bitfield.byte_size()));
      out.push_back(static_cast<char>(kIdBitfield));
      // MSB-first within each byte, per BEP 3.
      for (std::int64_t byte = 0; byte < msg.bitfield.byte_size(); ++byte) {
        std::uint8_t v = 0;
        for (int bit = 0; bit < 8; ++bit) {
          const int index = static_cast<int>(byte) * 8 + bit;
          if (index < msg.bitfield.size() && msg.bitfield.test(index)) {
            v |= static_cast<std::uint8_t>(0x80u >> bit);
          }
        }
        out.push_back(static_cast<char>(v));
      }
      break;
    }
    case MsgType::kRequest:
    case MsgType::kCancel:
      put_u32(out, 13);
      out.push_back(
          static_cast<char>(msg.type == MsgType::kRequest ? kIdRequest : kIdCancel));
      put_u32(out, static_cast<std::uint32_t>(msg.piece));
      put_u32(out, static_cast<std::uint32_t>(msg.offset));
      put_u32(out, static_cast<std::uint32_t>(msg.length));
      break;
    case MsgType::kPiece:
      put_u32(out, static_cast<std::uint32_t>(9 + msg.length));
      out.push_back(static_cast<char>(kIdPiece));
      put_u32(out, static_cast<std::uint32_t>(msg.piece));
      put_u32(out, static_cast<std::uint32_t>(msg.offset));
      out.append(static_cast<std::size_t>(msg.length), '\0');  // simulated payload
      break;
    case MsgType::kPex:
      put_u32(out, static_cast<std::uint32_t>(6 + 14 * msg.pex_added.size() +
                                              6 * msg.pex_dropped.size()));
      out.push_back(static_cast<char>(kIdExtended));
      out.push_back(static_cast<char>(kExtPex));
      put_u16(out, static_cast<std::uint16_t>(msg.pex_added.size()));
      put_u16(out, static_cast<std::uint16_t>(msg.pex_dropped.size()));
      for (const PexPeer& entry : msg.pex_added) {
        put_u32(out, entry.endpoint.addr.value);
        put_u16(out, entry.endpoint.port);
        put_u64(out, entry.peer_id);
      }
      for (const net::Endpoint& ep : msg.pex_dropped) {
        put_u32(out, ep.addr.value);
        put_u16(out, ep.port);
      }
      break;
  }
  return out;
}

std::optional<WireMessage> decode(std::string_view bytes, int bitfield_bits) {
  if (!bytes.empty() && static_cast<std::uint8_t>(bytes[0]) == kProtocol.size()) {
    return decode_handshake(bytes);
  }
  if (bytes.size() < 4) return std::nullopt;
  const std::uint32_t len = get_u32(bytes, 0);
  // Cap the declared body before any size math or allocation: a hostile
  // length prefix must not be able to drive a huge reserve downstream.
  if (len > static_cast<std::uint32_t>(kMaxFrameBody)) return std::nullopt;
  if (bytes.size() != 4 + static_cast<std::size_t>(len)) return std::nullopt;
  if (len == 0) {
    WireMessage msg;
    msg.type = MsgType::kKeepAlive;
    return msg;
  }

  const auto id = static_cast<std::uint8_t>(bytes[4]);
  const std::string_view body = bytes.substr(5);
  WireMessage msg;
  switch (id) {
    case kIdChoke:
    case kIdUnchoke:
    case kIdInterested:
    case kIdNotInterested:
      if (!body.empty()) return std::nullopt;
      msg.type = id == kIdChoke       ? MsgType::kChoke
                 : id == kIdUnchoke   ? MsgType::kUnchoke
                 : id == kIdInterested ? MsgType::kInterested
                                       : MsgType::kNotInterested;
      return msg;
    case kIdHave:
      if (body.size() != 4) return std::nullopt;
      msg.type = MsgType::kHave;
      msg.piece = static_cast<int>(get_u32(bytes, 5));
      return msg;
    case kIdBitfield:
      return decode_bitfield(body, bitfield_bits);
    case kIdRequest:
    case kIdCancel:
      if (body.size() != 12) return std::nullopt;
      msg.type = id == kIdRequest ? MsgType::kRequest : MsgType::kCancel;
      msg.piece = static_cast<int>(get_u32(bytes, 5));
      msg.offset = get_u32(bytes, 9);
      msg.length = get_u32(bytes, 13);
      return msg;
    case kIdPiece:
      if (body.size() < 8) return std::nullopt;
      msg.type = MsgType::kPiece;
      msg.piece = static_cast<int>(get_u32(bytes, 5));
      msg.offset = get_u32(bytes, 9);
      msg.length = static_cast<std::int64_t>(body.size()) - 8;
      return msg;
    case kIdExtended:
      return decode_pex(body);
  }
  return std::nullopt;
}

const char* malformed_reason(const WireMessage& msg, const Metainfo& meta) {
  const bool piece_ok = msg.piece >= 0 && msg.piece < meta.piece_count();
  switch (msg.type) {
    case MsgType::kHandshake:
    case MsgType::kKeepAlive:
    case MsgType::kChoke:
    case MsgType::kUnchoke:
    case MsgType::kInterested:
    case MsgType::kNotInterested:
      return nullptr;
    case MsgType::kHave:
      return piece_ok ? nullptr : "have index out of range";
    case MsgType::kBitfield:
      return msg.bitfield.size() == meta.piece_count() ? nullptr
                                                       : "bitfield sized for wrong torrent";
    case MsgType::kRequest:
    case MsgType::kCancel:
      if (!piece_ok) return "request index out of range";
      if (msg.length <= 0 || msg.length > kMaxRequestLength) {
        return "request length outside (0, 128 KiB]";
      }
      if (msg.offset < 0 || msg.offset + msg.length > meta.piece_size(msg.piece)) {
        return "request beyond piece end";
      }
      return nullptr;
    case MsgType::kPiece:
      if (!piece_ok) return "piece index out of range";
      if (msg.length < 0 || msg.length > kMaxFrameBody) return "piece length over frame cap";
      if (msg.offset < 0 || msg.offset + msg.length > meta.piece_size(msg.piece)) {
        return "piece payload beyond piece end";
      }
      return nullptr;
    case MsgType::kPex:
      if (msg.pex_added.size() + msg.pex_dropped.size() > kMaxPexEntries) {
        return "pex over entry cap";
      }
      return nullptr;
  }
  return nullptr;
}

}  // namespace wp2p::bt
