#include "bt/wire.hpp"

namespace wp2p::bt {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::kHandshake: return "handshake";
    case MsgType::kKeepAlive: return "keep-alive";
    case MsgType::kChoke: return "choke";
    case MsgType::kUnchoke: return "unchoke";
    case MsgType::kInterested: return "interested";
    case MsgType::kNotInterested: return "not-interested";
    case MsgType::kHave: return "have";
    case MsgType::kBitfield: return "bitfield";
    case MsgType::kRequest: return "request";
    case MsgType::kPiece: return "piece";
    case MsgType::kCancel: return "cancel";
  }
  return "?";
}

}  // namespace wp2p::bt
