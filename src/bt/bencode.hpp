// Bencode encoder/decoder (BEP 3).
//
// Used by the metainfo (.torrent) machinery. Implements the full format:
// integers (i...e), byte strings (len:bytes), lists (l...e) and dictionaries
// (d...e, keys sorted lexicographically as the spec requires).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace wp2p::bt {

class BencodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Bencode {
 public:
  using List = std::vector<Bencode>;
  using Dict = std::map<std::string, Bencode>;  // std::map keeps keys sorted

  Bencode() : value_{std::int64_t{0}} {}
  Bencode(std::int64_t v) : value_{v} {}                  // NOLINT(google-explicit-constructor)
  Bencode(int v) : value_{static_cast<std::int64_t>(v)} {}  // NOLINT(google-explicit-constructor)
  Bencode(std::string v) : value_{std::move(v)} {}        // NOLINT(google-explicit-constructor)
  Bencode(const char* v) : value_{std::string{v}} {}      // NOLINT(google-explicit-constructor)
  Bencode(List v) : value_{std::move(v)} {}               // NOLINT(google-explicit-constructor)
  Bencode(Dict v) : value_{std::move(v)} {}               // NOLINT(google-explicit-constructor)

  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_list() const { return std::holds_alternative<List>(value_); }
  bool is_dict() const { return std::holds_alternative<Dict>(value_); }

  std::int64_t as_int() const { return get<std::int64_t>("integer"); }
  const std::string& as_string() const { return get<std::string>("string"); }
  const List& as_list() const { return get<List>("list"); }
  const Dict& as_dict() const { return get<Dict>("dict"); }
  List& as_list() { return get<List>("list"); }
  Dict& as_dict() { return get<Dict>("dict"); }

  // Dictionary convenience: throws if absent or wrong type.
  const Bencode& at(const std::string& key) const {
    const Dict& d = as_dict();
    auto it = d.find(key);
    if (it == d.end()) throw BencodeError("missing key: " + key);
    return it->second;
  }
  bool contains(const std::string& key) const {
    return is_dict() && as_dict().count(key) > 0;
  }

  std::string encode() const;
  static Bencode decode(const std::string& data);

  bool operator==(const Bencode& other) const = default;

 private:
  template <typename T>
  const T& get(const char* what) const {
    if (const T* p = std::get_if<T>(&value_)) return *p;
    throw BencodeError(std::string{"not a "} + what);
  }
  template <typename T>
  T& get(const char* what) {
    if (T* p = std::get_if<T>(&value_)) return *p;
    throw BencodeError(std::string{"not a "} + what);
  }

  void encode_to(std::string& out) const;
  static Bencode parse(const std::string& data, std::size_t& pos, int depth);

  std::variant<std::int64_t, std::string, List, Dict> value_;
};

}  // namespace wp2p::bt
