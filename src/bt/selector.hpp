// Piece selection strategies.
//
// The default BitTorrent policy is rarest-first (Section 2.2 of the paper);
// sequential and random are provided as baselines, and the wP2P
// mobility-aware selector (core/) composes sequential + rarest-first.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace wp2p::bt {

struct SelectionContext {
  // Piece indices the requesting peer has, we lack, and are not in progress.
  std::span<const int> candidates;
  // Swarm-wide availability count per piece (indexed by piece).
  const std::vector<int>& availability;
  // Fraction of the file already downloaded (drives wP2P's pr schedule).
  double downloaded_fraction = 0.0;
  // Time since the download started or since the last disconnection.
  sim::SimTime stable_time = 0;
  sim::Rng& rng;
};

class PieceSelector {
 public:
  virtual ~PieceSelector() = default;
  // Pick a piece from ctx.candidates (never empty), or -1 to decline.
  virtual int pick(const SelectionContext& ctx) = 0;
  virtual const char* name() const = 0;
};

// Rarest-first: minimum availability; ties broken uniformly at random.
class RarestFirstSelector final : public PieceSelector {
 public:
  int pick(const SelectionContext& ctx) override;
  const char* name() const override { return "rarest-first"; }
};

// Strict in-order fetching.
class SequentialSelector final : public PieceSelector {
 public:
  int pick(const SelectionContext& ctx) override;
  const char* name() const override { return "sequential"; }
};

// Uniform random (early BitTorrent / baseline).
class RandomSelector final : public PieceSelector {
 public:
  int pick(const SelectionContext& ctx) override;
  const char* name() const override { return "random"; }
};

// Streaming-window policy (deadline-style baseline, contrast to wP2P MF):
// strictly in-order inside a sliding window of `window` pieces ahead of the
// playback frontier (the lowest missing piece), rarest-first beyond it when
// the whole window is already requested or unavailable from this peer.
class StreamingWindowSelector final : public PieceSelector {
 public:
  explicit StreamingWindowSelector(int window = 8) : window_{window} {}
  int pick(const SelectionContext& ctx) override;
  const char* name() const override { return "streaming-window"; }
  int window() const { return window_; }

 private:
  int window_;
  RarestFirstSelector rarest_;
};

}  // namespace wp2p::bt
