// Scripted adversarial peers for the enforcement layer's fault model.
//
// An AdversaryPeer speaks the real wire protocol through the ordinary
// simulated stack — it announces to the tracker, accepts and dials TCP
// connections, handshakes, and exchanges bitfields — but then misbehaves in
// one scripted way per AdversaryKind. Each kind targets one enforcement
// defense in bt::Client:
//
//   kSlowloris   unchokes every victim but serves one block per slow_delay,
//                pinning request pipelines (stall auditor).
//   kLiar        advertises a full bitfield and never serves a byte
//                (zero-payload liar detection).
//   kFlooder     blasts block requests far past any honest pipeline, choked
//                or not (request quota / backlog cap).
//   kGarbage     sends struct-malformed frames — bad indexes, impossible
//                lengths, wrong-torrent bitfields (malformation budget).
//   kChurner     serves honestly but flips choke/unchoke every churn_interval
//                (unchoke-churn window).
//   kWithholder  advertises everything, silently refuses a withheld slice
//                (repeat-piece liar detection).
//   kPexSpammer  gossips PEX messages stuffed with bogus endpoints
//                (endpoint sanity filter / spam budget).
//
// The scaffolding (session bookkeeping, handshake exchange, announce wheel)
// deliberately mirrors exp::FlyweightSwarm so an adversary is indistinguishable
// from a background peer until it starts cheating.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "bt/bitfield.hpp"
#include "bt/metainfo.hpp"
#include "bt/tracker.hpp"
#include "bt/wire.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tcp/stack.hpp"

namespace wp2p::bt {

enum class AdversaryKind {
  kSlowloris,
  kLiar,
  kFlooder,
  kGarbage,
  kChurner,
  kWithholder,
  kPexSpammer,
};

// Stable text names ("slowloris", "liar", ...) used by the scenario format's
// adv= key and bench flags; adversary_kind_from parses them back (nullopt for
// unknown names).
const char* to_string(AdversaryKind kind);
std::optional<AdversaryKind> adversary_kind_from(std::string_view name);

// Every registered kind in enum order (scenario fuzzer draws from this).
inline constexpr AdversaryKind kAllAdversaryKinds[] = {
    AdversaryKind::kSlowloris, AdversaryKind::kLiar,       AdversaryKind::kFlooder,
    AdversaryKind::kGarbage,   AdversaryKind::kChurner,    AdversaryKind::kWithholder,
    AdversaryKind::kPexSpammer,
};

struct AdversaryConfig {
  AdversaryKind kind = AdversaryKind::kSlowloris;
  std::uint16_t listen_port = 6881;
  sim::SimTime announce_interval = sim::seconds(60.0);
  // Shared misbehavior clock: flood bursts, garbage frames, churn flips and
  // PEX spam all run off one periodic tick.
  sim::SimTime tick_interval = sim::seconds(0.5);
  int max_dials = 16;             // victims dialed per announce response
  int flood_burst = 64;           // requests blasted per tick per session
  int garbage_per_tick = 4;       // malformed frames per tick per session
  int pex_spam_entries = 64;      // bogus entries per spam message
  int pex_spam_every_ticks = 8;   // spam message cadence in ticks
  sim::SimTime slow_delay = sim::seconds(45.0);  // slowloris per-block service time
  double withhold_fraction = 0.25;  // slice of advertised pieces never served
};

struct AdversaryStats {
  std::uint64_t sessions_opened = 0;
  std::uint64_t sessions_closed = 0;
  std::uint64_t requests_received = 0;
  std::uint64_t requests_withheld = 0;  // dropped by liar/withholder/slowloris
  std::uint64_t requests_sent = 0;      // flooder outbound
  std::uint64_t garbage_sent = 0;       // malformed frames emitted
  std::uint64_t churn_flips = 0;        // choke-state flips emitted
  std::uint64_t pex_bogus_sent = 0;     // bogus gossip entries emitted
  std::int64_t uploaded_payload = 0;    // real piece bytes served
  std::int64_t downloaded_payload = 0;  // piece bytes extracted from victims
};

class AdversaryPeer {
 public:
  AdversaryPeer(net::Node& node, tcp::Stack& stack, Tracker& tracker, const Metainfo& meta,
                AdversaryConfig config = {});
  ~AdversaryPeer();

  AdversaryPeer(const AdversaryPeer&) = delete;
  AdversaryPeer& operator=(const AdversaryPeer&) = delete;

  void start();
  void stop();

  AdversaryKind kind() const { return config_.kind; }
  PeerId peer_id() const { return peer_id_; }
  const AdversaryStats& stats() const { return stats_; }
  std::size_t open_sessions() const {
    return static_cast<std::size_t>(stats_.sessions_opened - stats_.sessions_closed);
  }

 private:
  struct Session {
    std::shared_ptr<tcp::Connection> conn;
    bool initiator = false;
    bool handshake_sent = false;
    bool handshake_received = false;
    bool am_choking = true;
    bool am_interested = false;
    bool peer_choking = true;
    bool peer_interested = false;
    int garbage_cursor = 0;        // rotates through malformation variants
    sim::SimTime serve_backlog_until = 0;  // slowloris: next free service slot

    bool established() const { return handshake_sent && handshake_received; }
  };

  bool advertises_full() const;
  bool announces_as_seed() const;
  const Bitfield& advertised_bitfield() const;
  bool withheld(int piece) const;

  void do_announce(AnnounceEvent event);
  void dial(net::Endpoint remote);
  void adopt(std::shared_ptr<tcp::Connection> conn, bool initiator);
  void close_session(Session& s);
  void send(Session& s, std::shared_ptr<const WireMessage> msg);
  void send_handshake(Session& s);
  void on_message(Session& s, const WireMessage& msg);
  void handle_request(Session& s, const WireMessage& msg);
  void tick();
  void flood_session(Session& s);
  void send_garbage(Session& s);
  void send_pex_spam(Session& s);

  net::Node& node_;
  tcp::Stack& stack_;
  Tracker& tracker_;
  const Metainfo& meta_;
  AdversaryConfig config_;
  sim::Simulator& sim_;
  sim::Rng rng_;
  PeerId peer_id_ = 0;
  bool running_ = false;
  Bitfield full_;   // advertised by the full-bitfield kinds
  Bitfield empty_;  // advertised by the leech kinds
  std::deque<std::unique_ptr<Session>> sessions_;
  sim::PeriodicTask announce_task_;
  sim::PeriodicTask tick_task_;
  int ticks_ = 0;
  AdversaryStats stats_;
  // Liveness flag shared into deferred callbacks (announces, slowloris
  // serves) so they become no-ops once the adversary is destroyed.
  std::shared_ptr<bool> alive_;
};

}  // namespace wp2p::bt
