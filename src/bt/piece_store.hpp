// Per-torrent download state: which blocks and pieces a client holds.
//
// The store tracks block-level completion (blocks are the 16 KiB request
// granularity of the wire protocol), piece verification, and the contiguous
// in-order prefix that determines media playability (Sections 3.6 / 4.3 of
// the paper).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bt/bitfield.hpp"
#include "bt/metainfo.hpp"

namespace wp2p::bt {

inline constexpr std::int64_t kBlockSize = 16 * 1024;

class PieceStore {
 public:
  explicit PieceStore(const Metainfo& meta);

  const Metainfo& meta() const { return *meta_; }
  const Bitfield& bitfield() const { return have_; }

  int piece_count() const { return have_.size(); }
  int blocks_in_piece(int piece) const;
  std::int64_t block_size(int piece, int block) const;

  bool has_piece(int piece) const { return have_.test(piece); }
  bool has_block(int piece, int block) const;
  bool complete() const { return have_.all(); }

  // Record a downloaded block. Returns true when this block completed its
  // piece (the piece then "verifies" and enters the bitfield).
  bool mark_block(int piece, int block);

  // Mark a whole piece present (seed initialization / hash-checked resume).
  void mark_piece(int piece);
  void mark_all();

  std::int64_t bytes_completed() const { return bytes_completed_; }
  double completed_fraction() const {
    return meta_->total_size == 0
               ? 1.0
               : static_cast<double>(bytes_completed_) / static_cast<double>(meta_->total_size);
  }

  // Bytes available in order from the start of the file: whole-piece prefix
  // plus in-order blocks of the first incomplete piece.
  std::int64_t contiguous_bytes() const;

  // Blocks of `piece` that are still missing.
  std::vector<int> missing_blocks(int piece) const;

 private:
  const Metainfo* meta_;
  Bitfield have_;
  // Block state only for pieces in progress; completed pieces drop theirs.
  std::unordered_map<int, std::vector<bool>> partial_;
  std::int64_t bytes_completed_ = 0;
};

}  // namespace wp2p::bt
