// Per-torrent download state: which blocks and pieces a client holds.
//
// The store tracks block-level completion (blocks are the 16 KiB request
// granularity of the wire protocol), piece verification, and the contiguous
// in-order prefix that determines media playability (Sections 3.6 / 4.3 of
// the paper).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bt/bitfield.hpp"
#include "bt/metainfo.hpp"

namespace wp2p::bt {

inline constexpr std::int64_t kBlockSize = 16 * 1024;

// Outcome of recording one downloaded block.
enum class BlockResult {
  kAccepted,       // new block stored, piece still incomplete
  kDuplicate,      // already had it (late/duplicate delivery) — bytes wasted
  kPieceComplete,  // block completed its piece and the digest verified
  kPieceCorrupt,   // block completed its piece but verification failed:
                   // the piece was reset and must be re-downloaded
};

class PieceStore {
 public:
  explicit PieceStore(const Metainfo& meta);

  const Metainfo& meta() const { return *meta_; }
  const Bitfield& bitfield() const { return have_; }

  int piece_count() const { return have_.size(); }
  int blocks_in_piece(int piece) const;
  std::int64_t block_size(int piece, int block) const;

  bool has_piece(int piece) const { return have_.test(piece); }
  bool has_block(int piece, int block) const;
  bool complete() const { return have_.all(); }

  // Record a downloaded block. `corrupt` marks a block whose payload was
  // damaged in flight (simulated digest perturbation). When the last block of
  // a piece lands, the accumulated digest is checked against the metainfo
  // hash: a match promotes the piece into the bitfield (kPieceComplete); a
  // mismatch discards every block of the piece (kPieceCorrupt) so rarest-first
  // re-requests it from scratch.
  BlockResult mark_block(int piece, int block, bool corrupt = false);

  // Mark a whole piece present (seed initialization / hash-checked resume).
  void mark_piece(int piece);
  void mark_all();

  // Snapshot/restore surface for the resume layer. A PartialState captures an
  // in-progress piece exactly: which blocks landed and which of those were
  // damaged in flight, so a restored partial re-enters the corrupt-reset path
  // rather than passing verification.
  struct PartialState {
    int piece = -1;
    std::vector<bool> blocks;
    std::vector<bool> corrupt;
  };
  std::vector<PartialState> export_partials() const;
  void restore_partial(const PartialState& state);

  // Forget a verified piece (trust-but-verify found it rotted at rest): it
  // leaves the bitfield and re-enters the selector as missing.
  void drop_piece(int piece);

  std::int64_t bytes_completed() const { return bytes_completed_; }
  double completed_fraction() const {
    return meta_->total_size == 0
               ? 1.0
               : static_cast<double>(bytes_completed_) / static_cast<double>(meta_->total_size);
  }

  // Bytes available in order from the start of the file: whole-piece prefix
  // plus in-order blocks of the first incomplete piece.
  std::int64_t contiguous_bytes() const;

  // Blocks of `piece` that are still missing.
  std::vector<int> missing_blocks(int piece) const;

  // Bytes received but not contributing to completion: duplicate/late block
  // deliveries plus every block thrown away by a corrupt-piece reset.
  std::int64_t wasted_bytes() const { return wasted_bytes_; }
  // Completed-then-rejected piece count (each one was fully re-downloaded).
  std::int64_t corrupt_pieces_detected() const { return corrupt_pieces_detected_; }
  // Blocks of the most recent kPieceCorrupt piece that arrived damaged —
  // the attribution set for per-peer corruption strikes (libtorrent's
  // "smart ban": only the peers that sent bad bytes get blamed).
  const std::vector<int>& last_corrupt_blocks() const { return last_corrupt_blocks_; }

 private:
  const Metainfo* meta_;
  Bitfield have_;
  // Per-piece in-progress state; completed pieces drop theirs. `digest`
  // starts at the expected hash and is XOR-perturbed per corrupt block, so
  // digest == expected iff no block arrived damaged.
  struct Partial {
    std::vector<bool> blocks;
    std::vector<bool> corrupt;
    std::uint64_t digest = 0;
  };
  std::unordered_map<int, Partial> partial_;
  std::int64_t bytes_completed_ = 0;
  std::int64_t wasted_bytes_ = 0;
  std::int64_t corrupt_pieces_detected_ = 0;
  std::vector<int> last_corrupt_blocks_;
};

}  // namespace wp2p::bt
