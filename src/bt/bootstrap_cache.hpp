// Bounded last-known-good peer endpoint cache.
//
// The client touches an entry whenever a handshake establishes (and when
// payload arrives), so the cache always holds the most recently *proven*
// listen endpoints. It is plain member data on the client — like the piece
// store it survives stop()/start(), which is exactly the crash/restart path
// the fault layer exercises — and it is consulted only when every tracker
// tier is unreachable (see Client::maybe_bootstrap).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "bt/metainfo.hpp"
#include "net/address.hpp"
#include "sim/time.hpp"

namespace wp2p::bt {

class BootstrapCache {
 public:
  struct Entry {
    net::Endpoint endpoint;
    PeerId peer_id = 0;
    sim::SimTime last_good = 0;
  };

  explicit BootstrapCache(std::size_t capacity) : capacity_(capacity) {}

  // Records `endpoint` as good for `id` now. An existing entry for the same
  // identity is re-pointed (a moved host keeps its id but changes address);
  // the oldest entry is evicted when the cache is full. Most recent last.
  void touch(net::Endpoint endpoint, PeerId id, sim::SimTime now) {
    if (capacity_ == 0 || !endpoint.addr.valid() || id == 0) return;
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Entry& e) { return e.peer_id == id; });
    if (it == entries_.end()) {
      it = std::find_if(entries_.begin(), entries_.end(),
                        [&](const Entry& e) { return e.endpoint == endpoint; });
    }
    Entry entry{endpoint, id, now};
    if (it != entries_.end()) entries_.erase(it);
    if (entries_.size() >= capacity_) entries_.erase(entries_.begin());
    entries_.push_back(entry);
  }

  // Drops every entry held for `id` (used when the peer is banned).
  void remove(PeerId id) {
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const Entry& e) { return e.peer_id == id; }),
                   entries_.end());
  }

  // Drops entries whose last proof of life is older than `ttl` at `now`
  // (ttl <= 0 disables aging). A resume after a long suspend prunes before
  // dialing, so a stale cell's addresses are never re-dialed. Returns the
  // number of entries dropped.
  std::size_t prune(sim::SimTime now, sim::SimTime ttl) {
    if (ttl <= 0) return 0;
    const std::size_t before = entries_.size();
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const Entry& e) { return now - e.last_good > ttl; }),
                   entries_.end());
    return before - entries_.size();
  }

  // Resume-restore path: reinsert a snapshotted entry with its original
  // timestamp (touch() would stamp `now` and defeat TTL aging on load).
  void restore(const Entry& entry) {
    if (capacity_ == 0 || !entry.endpoint.addr.valid() || entry.peer_id == 0) return;
    if (entries_.size() >= capacity_) entries_.erase(entries_.begin());
    entries_.push_back(entry);
  }

  const std::vector<Entry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

 private:
  std::size_t capacity_;
  std::vector<Entry> entries_;  // ordered oldest-touch first
};

}  // namespace wp2p::bt
