// Crash-consistent session persistence for a client.
//
// A ResumeSnapshot captures everything a mobile host's session is worth
// carrying across a suspend, app kill, or power cycle: the verified bitfield,
// block-level partial-piece state (including which blocks arrived damaged, so
// a restored piece still fails verification), the peer identity whose credit
// standing the paper shows is the mobile host's most valuable asset, the
// credit/strike/ban carry-over, and the bootstrap cache of last-known-good
// endpoints. Snapshots serialize to a line-oriented text form and are
// journaled through sim::StableStorage, whose chained checksums are what let
// load() reject torn or corrupt records and degrade to an older snapshot or
// a cold restart instead of trusting garbage.
//
// The store itself is deliberately dumb: save() serializes and appends,
// load() returns the newest checksum-valid snapshot matching the torrent's
// info hash. Policy — what to restore, what to re-verify, when to degrade —
// lives in bt::Client's resume path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bt/bootstrap_cache.hpp"
#include "bt/credit_ledger.hpp"
#include "bt/metainfo.hpp"
#include "bt/piece_store.hpp"
#include "sim/stable_storage.hpp"

namespace wp2p::bt {

struct ResumeSnapshot {
  InfoHash info_hash = 0;
  PeerId peer_id = 0;
  sim::SimTime taken_at = 0;
  int piece_count = 0;                             // torrent shape sanity check
  std::vector<int> have;                           // verified piece indices
  std::vector<PieceStore::PartialState> partials;  // in-progress pieces
  std::vector<CreditLedger::Exported> credit;
  std::vector<std::pair<PeerId, int>> strikes;     // sorted by peer id
  std::vector<PeerId> banned;                      // sorted
  std::vector<BootstrapCache::Entry> bootstrap;    // oldest-touch first

  std::string serialize() const;
  static std::optional<ResumeSnapshot> parse(std::string_view text);
};

class ResumeStore {
 public:
  struct Stats {
    std::uint64_t saves = 0;
    std::uint64_t loads = 0;
    std::uint64_t load_failures = 0;  // journal empty/rejected or wrong torrent
  };

  struct Loaded {
    ResumeSnapshot snapshot;
    std::uint64_t seq = 0;  // journal sequence the snapshot came from
    int discarded = 0;      // younger records the checksum chain rejected
  };

  ResumeStore(sim::StableStorage& storage, InfoHash info_hash)
      : storage_{storage}, info_hash_{info_hash} {}

  ResumeStore(const ResumeStore&) = delete;
  ResumeStore& operator=(const ResumeStore&) = delete;

  // Journal a snapshot; `done(seq)` fires when the device acks (which, per
  // the storage fault model, is not a durability promise).
  std::uint64_t save(const ResumeSnapshot& snapshot,
                     std::function<void(std::uint64_t)> done = {});

  // Newest checksum-valid snapshot for this torrent, or nullopt → cold start.
  std::optional<Loaded> load();

  sim::StableStorage& storage() { return storage_; }
  const Stats& stats() const { return stats_; }

 private:
  sim::StableStorage& storage_;
  InfoHash info_hash_;
  Stats stats_;
};

}  // namespace wp2p::bt
