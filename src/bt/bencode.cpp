#include "bt/bencode.hpp"

namespace wp2p::bt {

namespace {

// Hostile-input cap: bencode nests by recursion, so unbounded list/dict depth
// is a stack-overflow vector. No legitimate metainfo comes close.
constexpr int kMaxDepth = 64;

}  // namespace

std::string Bencode::encode() const {
  std::string out;
  encode_to(out);
  return out;
}

void Bencode::encode_to(std::string& out) const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += 'i';
    out += std::to_string(*i);
    out += 'e';
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    out += std::to_string(s->size());
    out += ':';
    out += *s;
  } else if (const auto* l = std::get_if<List>(&value_)) {
    out += 'l';
    for (const Bencode& item : *l) item.encode_to(out);
    out += 'e';
  } else {
    const Dict& d = std::get<Dict>(value_);
    out += 'd';
    for (const auto& [key, val] : d) {
      out += std::to_string(key.size());
      out += ':';
      out += key;
      val.encode_to(out);
    }
    out += 'e';
  }
}

Bencode Bencode::decode(const std::string& data) {
  std::size_t pos = 0;
  Bencode result = parse(data, pos, 0);
  if (pos != data.size()) throw BencodeError("trailing data after value");
  return result;
}

Bencode Bencode::parse(const std::string& data, std::size_t& pos, int depth) {
  if (depth > kMaxDepth) throw BencodeError("nesting too deep");
  if (pos >= data.size()) throw BencodeError("unexpected end of input");
  const char c = data[pos];
  if (c == 'i') {
    ++pos;
    std::size_t end = data.find('e', pos);
    if (end == std::string::npos) throw BencodeError("unterminated integer");
    const std::string digits = data.substr(pos, end - pos);
    if (digits.empty()) throw BencodeError("empty integer");
    // Reject leading zeros and lone '-' per the spec ("i-0e" etc. invalid).
    if (digits == "-" || (digits.size() > 1 && digits[0] == '0') ||
        (digits.size() > 2 && digits[0] == '-' && digits[1] == '0') || digits == "-0") {
      throw BencodeError("malformed integer: " + digits);
    }
    std::size_t used = 0;
    std::int64_t value = 0;
    try {
      value = std::stoll(digits, &used);
    } catch (const std::exception&) {
      throw BencodeError("malformed integer: " + digits);
    }
    if (used != digits.size()) throw BencodeError("malformed integer: " + digits);
    pos = end + 1;
    return Bencode{value};
  }
  if (c == 'l') {
    ++pos;
    List list;
    while (pos < data.size() && data[pos] != 'e') list.push_back(parse(data, pos, depth + 1));
    if (pos >= data.size()) throw BencodeError("unterminated list");
    ++pos;
    return Bencode{std::move(list)};
  }
  if (c == 'd') {
    ++pos;
    Dict dict;
    std::string last_key;
    while (pos < data.size() && data[pos] != 'e') {
      Bencode key = parse(data, pos, depth + 1);
      if (!key.is_string()) throw BencodeError("dictionary key is not a string");
      std::string k = key.as_string();
      if (!dict.empty() && k <= last_key) {
        throw BencodeError("dictionary keys not sorted/unique");
      }
      Bencode value = parse(data, pos, depth + 1);
      last_key = k;
      dict.emplace(std::move(k), std::move(value));
    }
    if (pos >= data.size()) throw BencodeError("unterminated dict");
    ++pos;
    return Bencode{std::move(dict)};
  }
  if (c >= '0' && c <= '9') {
    std::size_t colon = data.find(':', pos);
    if (colon == std::string::npos) throw BencodeError("unterminated string length");
    const std::string len_str = data.substr(pos, colon - pos);
    if (len_str.size() > 1 && len_str[0] == '0') throw BencodeError("string length has leading zero");
    std::size_t len = 0;
    try {
      len = static_cast<std::size_t>(std::stoull(len_str));
    } catch (const std::exception&) {
      throw BencodeError("bad string length: " + len_str);
    }
    // Compare against the remaining bytes (not colon+1+len, which can wrap
    // for a hostile length) so a huge declared length never drives an
    // allocation before this check.
    if (len > data.size() - colon - 1) throw BencodeError("string shorter than declared");
    Bencode result{data.substr(colon + 1, len)};
    pos = colon + 1 + len;
    return result;
  }
  throw BencodeError(std::string{"unexpected character: "} + c);
}

}  // namespace wp2p::bt
