// BitTorrent client configuration.
#pragma once

#include <cstdint>

#include "sim/time.hpp"
#include "util/units.hpp"

namespace wp2p::bt {

enum class SelectorKind { kRarestFirst, kSequential, kRandom };

struct ClientConfig {
  std::uint16_t listen_port = 6881;
  int max_peers = 30;       // dial target; inbound accepted up to 125% of this
  int unchoke_slots = 4;    // regular tit-for-tat slots (+1 optimistic)
  sim::SimTime choke_interval = sim::seconds(10.0);
  sim::SimTime optimistic_interval = sim::seconds(30.0);
  int pipeline_depth = 8;   // outstanding block requests per peer
  util::Rate upload_limit = util::Rate::unlimited();
  sim::SimTime announce_interval = sim::minutes(5.0);
  bool seed_after_complete = true;
  SelectorKind selector = SelectorKind::kRarestFirst;

  // A block requested this long ago with no data is re-queued to other peers
  // ("the peer selection algorithm chooses an alternate peer", Section 3.5).
  sim::SimTime request_timeout = sim::seconds(60.0);
  // End-game mode: when no unrequested blocks remain and at most this many
  // blocks are outstanding, duplicate the stragglers' requests to every peer
  // that has them (cancels go out as blocks arrive). 0 disables.
  int endgame_block_threshold = 16;
  // A peer that unchoked us but has sent nothing for this long while we have
  // requests outstanding to it is "snubbed": we stop reciprocating until it
  // resumes. 0 disables.
  sim::SimTime snub_timeout = sim::seconds(60.0);
  // Keep-alives flow on connections idle this long; a connection on which
  // nothing has been *received* for idle_timeout is presumed dead and closed
  // (dead peers otherwise leak connection slots forever after hand-offs).
  sim::SimTime keepalive_interval = sim::seconds(100.0);
  sim::SimTime idle_timeout = sim::minutes(4.0);
  sim::SimTime rate_window = sim::seconds(20.0);  // choker rate measurement
  sim::SimTime credit_half_life = sim::minutes(10.0);
  // Converts remembered credit (bytes) into a rate-equivalent for unchoke
  // ranking: score = rate + credit / credit_to_rate_seconds.
  double credit_to_rate_seconds = 120.0;
  std::int64_t max_tcp_backlog = 128 * 1024;  // per-peer TCP send buffering cap
  sim::SimTime upload_pump_interval = sim::milliseconds(50.0);

  // --- Recovery behaviour ---------------------------------------------------
  // Announce retry: a failed announce (unreachable tracker) is retried on a
  // capped exponential backoff with deterministic jitter, decoupled from the
  // periodic announce — recovery after an outage or hand-off takes seconds,
  // not a full announce_interval. Disable to model the naive client.
  bool announce_retry = true;
  sim::SimTime announce_retry_initial = sim::seconds(2.0);
  sim::SimTime announce_retry_cap = sim::seconds(30.0);
  // Jitter factor: each retry delay is base * (1 + jitter * u), u in [-1, 1)
  // drawn from the client's own RNG stream (deterministic per seed).
  double announce_retry_jitter = 0.25;

  // Corruption defense: a completed piece that fails verification earns each
  // contributing peer of the damaged blocks a strike; a peer reaching
  // ban_threshold strikes is banned (disconnected, never re-dialed, refused
  // on handshake, skipped in announce responses, no unchoke slots).
  int ban_threshold = 3;
  // Self-test switch (see TESTING.md): accept corrupt contributors forever.
  // The peer-ban invariant rule must flag runs with this set; never enable
  // outside the harness.
  bool unsafe_no_peer_ban = false;

  // Reconnect policy: when an established peer connection dies by TCP
  // timeout (silent peer — the signature of a hand-off, not a deliberate
  // close/reset), re-dial its listen endpoint on a capped exponential
  // backoff. This re-knits a mobile host's swarm even with role_reversal
  // off. Disable to model the naive client.
  bool reconnect = true;
  sim::SimTime reconnect_initial = sim::seconds(2.0);
  sim::SimTime reconnect_cap = sim::seconds(60.0);
  int reconnect_max_attempts = 4;

  // --- Discovery resilience -------------------------------------------------
  // Multi-tracker failover (BEP 12): backup trackers registered via
  // Client::add_tracker form ordered tiers; a failed announce advances to the
  // next tracker (the announce-retry chain then dials it), the first
  // responsive backup is promoted to the head of its tier, and a periodic
  // probe fails back to the primary once it answers again.
  bool tracker_failover = true;
  sim::SimTime tracker_probe_interval = sim::seconds(60.0);

  // PEX gossip (BEP 11): on a rate-limited interval, send each connected peer
  // the delta of established listen endpoints since the last exchange. Never
  // gossips the recipient itself, our own address, or banned identities, and
  // never dials a gossiped endpoint whose peer-id is banned.
  bool pex = true;
  sim::SimTime pex_interval = sim::seconds(30.0);

  // Bootstrap cache: remember the last-known-good peer listen endpoints
  // across crash/restart (like the piece store) and re-dial them only after a
  // full failed cycle through every tracker tier — i.e. when discovery is
  // completely dark.
  bool bootstrap_cache = true;
  int bootstrap_cache_size = 16;
  sim::SimTime bootstrap_min_interval = sim::seconds(30.0);

  // --- Protocol enforcement -------------------------------------------------
  // Defenses against actively misbehaving peers (floods, liars, slowloris,
  // garbage frames, PEX spam). Detections are always counted and traced;
  // every threshold crossing feeds one enforcement strike into the same
  // strike/ban path as corruption (kBtPeerStrike with aux "enforce"), so a
  // persistent attacker is banned after ban_threshold crossings.
  //
  // Per-peer request backlog cap: requests beyond this many outstanding
  // uploads from one peer are dropped, and every flood_strike_threshold
  // dropped-or-choked requests cost a strike.
  int max_request_backlog = 128;
  int flood_strike_threshold = 64;
  // Struct-malformed frames (see bt::malformed_reason) tolerated per peer
  // before each strike. Real stacks kill on the first, but counting in
  // budget-sized steps keeps detection observable under --no-enforcement.
  int malformed_budget = 4;
  // Bitfield/have liar + withholder detection: request timeouts against a
  // peer that has delivered zero payload, or repeat timeouts on the same
  // advertised piece, are lie evidence; each liar_strike_threshold
  // accumulated costs a strike. Evidence is scored once per piece per
  // maintenance pass, and a piece only counts as a repeat offender after
  // liar_repeat_passes passes with no block of it delivered in between.
  int liar_strike_threshold = 8;
  int liar_repeat_passes = 3;
  // Stall auditor: a peer continuously snubbed (unchoked us, sent nothing)
  // for this many consecutive maintenance ticks earns a strike. The mobility
  // grace below keeps hand-off stalls out of this count.
  int stall_audit_ticks = 6;
  // Unchoke churner: more than churn_flip_threshold unchokes from one peer
  // inside churn_window costs a strike.
  int churn_flip_threshold = 16;
  sim::SimTime churn_window = sim::seconds(60.0);
  // PEX endpoint sanity: at most pex_endpoint_budget unique gossiped
  // endpoints are accepted per peer; invalid or over-budget entries count as
  // spam, and every pex_spam_threshold spam entries cost a strike.
  int pex_endpoint_budget = 64;
  int pex_spam_threshold = 32;
  // Mobility grace: after evidence a peer moved (its connection died by TCP
  // timeout, or its identity re-handshook from a new address), its stall and
  // liar counters are held for this long — hand-off churn must never
  // accumulate misbehavior score.
  sim::SimTime mobility_grace = sim::seconds(120.0);
  // Self-test switch (see TESTING.md): count and trace detections but never
  // drop, cap, or strike. The enforcement invariant rules must flag runs
  // with this set; never enable outside the harness.
  bool unsafe_no_enforcement = false;

  // --- Session persistence --------------------------------------------------
  // With a ResumeStore attached (Client::attach_resume), a snapshot of the
  // session (bitfield, partial pieces, identity, credit/strike carry-over,
  // bootstrap cache) is journaled every checkpoint interval and at suspend;
  // start() restores from the newest checksum-valid snapshot instead of
  // cold-starting. 0 disables periodic checkpoints (suspend still writes one).
  sim::SimTime resume_checkpoint_interval = sim::seconds(30.0);
  // Trust-but-verify: on restore, re-verify this many sampled pieces against
  // the storage medium; any rot found drops the piece and escalates to a full
  // scan of the restored bitfield. 0 trusts the snapshot blindly.
  int resume_verify_samples = 4;
  // Bootstrap-cache entries older than this are dropped on restore (and on
  // every bootstrap dial), so a resume after a long suspend doesn't re-dial
  // a stale cell's addresses. <= 0 disables aging.
  sim::SimTime bootstrap_entry_ttl = sim::minutes(30.0);

  // --- Mobility behaviour ---------------------------------------------------
  // Default clients regenerate their peer-id on task re-initiation; the wP2P
  // Incentive-Aware component retains it within the swarm (Section 4.2).
  bool retain_peer_id = false;
  // Default clients rebuild via the tracker after a detection delay; the wP2P
  // Role-Reversal component reconnects to remembered peers instantly
  // (Section 4.3).
  bool role_reversal = false;
  // How long a default client takes to notice a hand-off killed its task. A
  // downloading leech notices quickly (stalled reads, socket errors on its
  // active transfers); a seed sees only silence and waits for write timeouts
  // or its next tracker announce.
  sim::SimTime leech_reinit_delay = sim::seconds(5.0);
  sim::SimTime seed_reinit_delay = sim::seconds(120.0);
};

}  // namespace wp2p::bt
