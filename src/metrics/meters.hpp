// Measurement primitives: throughput meters, time series, and run statistics.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "util/sliding_window.hpp"
#include "util/units.hpp"

namespace wp2p::metrics {

// Windowed throughput meter: add byte counts as they occur, read the average
// rate over the trailing window.
class ThroughputMeter {
 public:
  explicit ThroughputMeter(sim::SimTime window = sim::seconds(10.0)) : sum_{window} {}

  void add(sim::SimTime now, std::int64_t bytes) {
    sum_.add(now, static_cast<double>(bytes));
    total_ += bytes;
  }

  util::Rate rate(sim::SimTime now) {
    const double bytes_per_us = sum_.rate(now);
    return util::Rate::bytes_per_sec(bytes_per_us * 1e6);
  }

  std::int64_t total() const { return total_; }
  void reset_window() { sum_.clear(); }

 private:
  util::WindowedSum sum_;
  std::int64_t total_ = 0;
};

// An append-only (time, value) series sampled by experiments.
class TimeSeries {
 public:
  struct Point {
    sim::SimTime time;
    double value;
  };

  void record(sim::SimTime time, double value) { points_.push_back({time, value}); }
  const std::vector<Point>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }

  double last_value() const { return points_.empty() ? 0.0 : points_.back().value; }

  // Mean of values in [from, to].
  double mean(sim::SimTime from = 0, sim::SimTime to = sim::kSimTimeMax) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (const Point& p : points_) {
      if (p.time < from || p.time > to) continue;
      sum += p.value;
      ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

 private:
  std::vector<Point> points_;
};

// Aggregates repeated-run scalars (the paper's "averaged over N runs").
class RunStats {
 public:
  void add(double value) { values_.push_back(value); }

  // Append another aggregate's samples. Merging partial aggregates in a fixed
  // order (e.g. by run index) reproduces the serial accumulation exactly, so
  // parallel multi-seed runs yield bit-identical statistics.
  void merge(const RunStats& other) {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }

  const std::vector<double>& values() const { return values_; }

  std::size_t count() const { return values_.size(); }
  double mean() const {
    if (values_.empty()) return 0.0;
    double sum = 0.0;
    for (double v : values_) sum += v;
    return sum / static_cast<double>(values_.size());
  }
  double stddev() const {
    if (values_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : values_) acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values_.size() - 1));
  }
  double min() const {
    return values_.empty() ? 0.0 : *std::min_element(values_.begin(), values_.end());
  }
  double max() const {
    return values_.empty() ? 0.0 : *std::max_element(values_.begin(), values_.end());
  }

 private:
  std::vector<double> values_;
};

}  // namespace wp2p::metrics
