// Fixed-bucket histogram with percentile queries (latency/rate summaries).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace wp2p::metrics {

class Histogram {
 public:
  // Buckets span [lo, hi) uniformly; out-of-range samples clamp to the edge
  // buckets and are counted in the totals.
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_{lo}, hi_{hi}, counts_(buckets, 0) {
    WP2P_ASSERT(hi > lo);
    WP2P_ASSERT(buckets > 0);
  }

  void add(double value) {
    ++total_;
    sum_ += value;
    min_ = total_ == 1 ? value : std::min(min_, value);
    max_ = total_ == 1 ? value : std::max(max_, value);
    ++counts_[bucket_of(value)];
  }

  std::uint64_t count() const { return total_; }
  double mean() const { return total_ == 0 ? 0.0 : sum_ / static_cast<double>(total_); }
  double min() const { return total_ == 0 ? 0.0 : min_; }
  double max() const { return total_ == 0 ? 0.0 : max_; }

  // Value at quantile q in [0,1], linearly interpolated within the bucket.
  // The extremes return the observed min/max rather than bucket edges: with
  // clamped out-of-range samples, lo_/hi_ can be arbitrarily far from any
  // value actually recorded.
  double percentile(double q) const {
    WP2P_ASSERT(q >= 0.0 && q <= 1.0);
    if (total_ == 0) return 0.0;
    if (q <= 0.0) return min_;
    if (q >= 1.0) return max_;
    const double target = q * static_cast<double>(total_);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const double next = cumulative + static_cast<double>(counts_[i]);
      if (next >= target) {
        const double within =
            counts_[i] == 0 ? 0.0 : (target - cumulative) / static_cast<double>(counts_[i]);
        return bucket_lo(i) + within * bucket_width();
      }
      cumulative = next;
    }
    return hi_;
  }

  std::uint64_t bucket_count(std::size_t i) const { return counts_.at(i); }
  std::size_t buckets() const { return counts_.size(); }
  double bucket_lo(std::size_t i) const {
    return lo_ + static_cast<double>(i) * bucket_width();
  }
  double bucket_width() const {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }

 private:
  std::size_t bucket_of(double value) const {
    if (value < lo_) return 0;
    const auto raw = static_cast<std::size_t>((value - lo_) / bucket_width());
    return std::min(raw, counts_.size() - 1);
  }

  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wp2p::metrics
