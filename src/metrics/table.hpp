// Plain-text table writer for bench output (one table per paper figure).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace wp2p::metrics {

class Table {
 public:
  explicit Table(std::string title) : title_{std::move(title)} {}

  Table& columns(std::vector<std::string> names) {
    columns_ = std::move(names);
    return *this;
  }

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  static std::string num(double v, int precision = 1) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], r[i].size());
      }
    }
    std::fprintf(out, "\n== %s ==\n", title_.c_str());
    print_row(out, columns_, widths);
    std::string rule;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      rule += std::string(widths[i] + 2, '-');
    }
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto& r : rows_) print_row(out, r, widths);
  }

  // CSV form of the same table: a `# title` comment, the header row, then one
  // line per row. Cells containing commas or quotes are double-quoted.
  void print_csv(std::FILE* out = stdout) const {
    std::fprintf(out, "\n# %s\n", title_.c_str());
    print_csv_row(out, columns_);
    for (const auto& r : rows_) print_csv_row(out, r);
  }

 private:
  static void print_csv_row(std::FILE* out, const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) std::fputc(',', out);
      const std::string& cell = cells[i];
      if (cell.find_first_of(",\"") == std::string::npos) {
        std::fputs(cell.c_str(), out);
      } else {
        std::fputc('"', out);
        for (char c : cell) {
          if (c == '"') std::fputc('"', out);
          std::fputc(c, out);
        }
        std::fputc('"', out);
      }
    }
    std::fputc('\n', out);
  }

  static void print_row(std::FILE* out, const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::fprintf(out, "%-*s  ", static_cast<int>(i < widths.size() ? widths[i] : 0),
                   cells[i].c_str());
    }
    std::fputc('\n', out);
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wp2p::metrics
