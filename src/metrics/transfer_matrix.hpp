// Per-pair transfer accounting for incentive-clustering experiments.
//
// A TransferMatrix holds one row per peer IDENTITY (not per connection): who
// uploaded how many payload bytes to whom, who downloaded from whom, and for
// how long each ordered pair was in the unchoked state. Identities are bound
// to BitTorrent peer-ids; a client that reconnects, loses a duplicate-
// handshake tie-break, or regenerates its peer-id after a hand-off keeps
// accumulating into the same row as long as every id it has used is bound
// (bind() keeps old bindings alive for exactly this reason).
//
// On top of the raw matrix sit the reducers of Legout et al., "Clustering and
// Sharing Incentives in BitTorrent Systems" (arXiv:cs/0703107):
//
//  * same-class unchoke affinity — the fraction of a leech's unchoke time
//    given to leeches of its own bandwidth class,
//  * the class-size null model — the affinity a class-blind chooser would
//    show, (n_c - 1) / (N - 1) over the N non-seed identities,
//  * the clustering coefficient — affinity normalized against the null model
//    so perfect clustering reads 1 and uniform mixing reads ~0,
//  * an empirical shuffled baseline — the coefficient recomputed under random
//    permutations of the class labels (should straddle 0),
//  * free-rider yield and per-identity seed-provisioning share.
//
// Everything here is plain data plus pure arithmetic: reducers depend only on
// the accumulated matrix, so results are bit-identical for any --jobs value.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace wp2p::metrics {

class TransferMatrix {
 public:
  struct Identity {
    std::string label;
    int bw_class = -1;     // -1 = unclassed
    bool is_seed = false;  // initial seeds provision, they do not cluster
  };

  // --- Identity management ----------------------------------------------------

  int add_identity(std::string label, int bw_class, bool is_seed) {
    const int row = static_cast<int>(identities_.size());
    identities_.push_back(Identity{std::move(label), bw_class, is_seed});
    for (auto& r : cells_) r.resize(identities_.size());
    cells_.emplace_back(identities_.size());
    return row;
  }

  // Bind a wire peer-id to a row. Old bindings are kept: a peer that
  // regenerates its id after a hand-off keeps its history reachable under
  // both ids, so in-flight bytes attributed to the old id still land in the
  // right row. Rebinding an id to a new row wins (ids are 64-bit random;
  // reuse means the same identity regenerated into a collision, which the
  // RNG makes negligible).
  void bind(std::uint64_t peer_id, int row) { rows_by_id_[peer_id] = row; }

  int row_of(std::uint64_t peer_id) const {
    const auto it = rows_by_id_.find(peer_id);
    return it == rows_by_id_.end() ? -1 : it->second;
  }

  std::size_t rows() const { return identities_.size(); }
  const Identity& identity(int row) const {
    return identities_[static_cast<std::size_t>(row)];
  }

  // --- Event feed -------------------------------------------------------------

  void record_upload(int from, int to, std::int64_t bytes) {
    cell(from, to).uploaded += bytes;
  }
  // `row` received `bytes` sourced at identity `src`.
  void record_download(int row, int src, std::int64_t bytes) {
    cell(row, src).downloaded += bytes;
  }

  // Unchoke-state edge on the ordered pair (from -> to). Nested opens (two
  // live connections to the same identity, e.g. a simultaneous open before
  // the tie-break resolves) are reference-counted: the pair counts as
  // unchoked while at least one connection is.
  void set_unchoked(int from, int to, bool unchoked, sim::SimTime now) {
    Cell& c = cell(from, to);
    if (unchoked) {
      if (c.open == 0) c.open_since = now;
      ++c.open;
      return;
    }
    if (c.open == 0) return;  // edge for a connection opened before tracking
    if (--c.open == 0) c.unchoke_time += now - c.open_since;
  }

  // Close the open unchoke intervals of one row (its identity's leech phase
  // ended; the rest of the matrix keeps accumulating). Affinity is a
  // leech-phase quantity: freeze a row at its completion so post-completion
  // seeding does not dilute it.
  void finish_row(int row, sim::SimTime now) {
    for (Cell& c : cells_[static_cast<std::size_t>(row)]) {
      if (c.open > 0) {
        c.unchoke_time += now - c.open_since;
        c.open = 0;
      }
    }
  }

  // Close every open unchoke interval (end of run / of the measured phase).
  void finish(sim::SimTime now) {
    for (auto& r : cells_) {
      for (Cell& c : r) {
        if (c.open > 0) {
          c.unchoke_time += now - c.open_since;
          c.open = 0;
        }
      }
    }
  }

  std::int64_t uploaded(int from, int to) const { return cell(from, to).uploaded; }
  std::int64_t downloaded(int row, int src) const { return cell(row, src).downloaded; }
  sim::SimTime unchoke_time(int from, int to) const { return cell(from, to).unchoke_time; }

  std::int64_t total_uploaded(int row) const {
    std::int64_t sum = 0;
    for (std::size_t j = 0; j < identities_.size(); ++j) {
      sum += cell(row, static_cast<int>(j)).uploaded;
    }
    return sum;
  }
  std::int64_t total_downloaded(int row) const {
    std::int64_t sum = 0;
    for (std::size_t j = 0; j < identities_.size(); ++j) {
      sum += cell(row, static_cast<int>(j)).downloaded;
    }
    return sum;
  }

  // --- Reducers (Legout et al.) -----------------------------------------------

  // Fraction of `row`'s unchoke time spent on non-seed identities of its own
  // class. -1 when the row is a seed, unclassed, or never unchoked a leech.
  double same_class_affinity(int row) const {
    return affinity_under(row, [this](int r) { return identities_[static_cast<std::size_t>(r)].bw_class; });
  }

  // What a class-blind sender in `row`'s class would score: the share of
  // same-class identities among the other non-seed identities.
  double null_affinity(int row) const {
    const Identity& me = identities_[static_cast<std::size_t>(row)];
    if (me.is_seed || me.bw_class < 0) return -1.0;
    std::size_t peers = 0, same = 0;
    for (std::size_t j = 0; j < identities_.size(); ++j) {
      if (j == static_cast<std::size_t>(row) || identities_[j].is_seed) continue;
      ++peers;
      if (identities_[j].bw_class == me.bw_class) ++same;
    }
    if (peers == 0) return -1.0;
    return static_cast<double>(same) / static_cast<double>(peers);
  }

  // Class-level clustering coefficient: the unchoke time all leeches of
  // `bw_class` gave to their own class, as a fraction of their unchoke time
  // to any leech, normalized against the class-size null model. 1 = perfect
  // clustering, ~0 = class-blind mixing, < 0 = active avoidance. -1 when the
  // class never unchoked anyone (no signal).
  double clustering_coefficient(int bw_class) const {
    std::vector<int> labels(identities_.size());
    for (std::size_t i = 0; i < identities_.size(); ++i) labels[i] = identities_[i].bw_class;
    return coefficient_under(bw_class, labels);
  }

  // Unchoke-time-weighted mean coefficient over every class present.
  double overall_coefficient() const {
    std::vector<int> labels(identities_.size());
    for (std::size_t i = 0; i < identities_.size(); ++i) labels[i] = identities_[i].bw_class;
    return overall_under(labels);
  }

  // Empirical null: the overall coefficient under `rounds` random
  // permutations of the class labels across non-seed identities, averaged.
  // Converges to ~0; the distance between the real coefficient and this
  // baseline is the clustering signal.
  double shuffled_coefficient(std::uint64_t seed, int rounds = 32) const {
    std::vector<std::size_t> leeches;
    std::vector<int> labels(identities_.size());
    for (std::size_t i = 0; i < identities_.size(); ++i) {
      labels[i] = identities_[i].bw_class;
      if (!identities_[i].is_seed) leeches.push_back(i);
    }
    sim::Rng rng{seed ^ 0x5bf0f3c6d1a492e7ULL};
    double sum = 0.0;
    int used = 0;
    for (int round = 0; round < rounds; ++round) {
      std::vector<int> shuffled = labels;
      // Fisher-Yates over the leech positions only; seeds keep their label.
      for (std::size_t i = leeches.size(); i > 1; --i) {
        const std::size_t j = rng.below(i);
        std::swap(shuffled[leeches[i - 1]], shuffled[leeches[j]]);
      }
      const double coeff = overall_under(shuffled);
      if (coeff > -1.0) {
        sum += coeff;
        ++used;
      }
    }
    return used == 0 ? -1.0 : sum / static_cast<double>(used);
  }

  // Free-rider yield: `row`'s total download relative to the mean download of
  // the other non-seed identities that actually uploaded. ~1 means free
  // riding is not punished; well below 1 means tit-for-tat starved the row.
  // 0 when there is no contributing leech to compare against (e.g. an
  // all-seed swarm).
  double free_rider_yield(int row) const {
    double contrib_sum = 0.0;
    std::size_t contributors = 0;
    for (std::size_t j = 0; j < identities_.size(); ++j) {
      if (j == static_cast<std::size_t>(row) || identities_[j].is_seed) continue;
      if (total_uploaded(static_cast<int>(j)) <= 0) continue;
      contrib_sum += static_cast<double>(total_downloaded(static_cast<int>(j)));
      ++contributors;
    }
    if (contributors == 0 || contrib_sum <= 0.0) return 0.0;
    const double mean = contrib_sum / static_cast<double>(contributors);
    return static_cast<double>(total_downloaded(row)) / mean;
  }

  // Share of `row`'s downloaded bytes provisioned by initial seeds.
  double seed_share(int row) const {
    const std::int64_t total = total_downloaded(row);
    if (total <= 0) return 0.0;
    std::int64_t from_seeds = 0;
    for (std::size_t j = 0; j < identities_.size(); ++j) {
      if (identities_[j].is_seed) from_seeds += cell(row, static_cast<int>(j)).downloaded;
    }
    return static_cast<double>(from_seeds) / static_cast<double>(total);
  }

 private:
  struct Cell {
    std::int64_t uploaded = 0;
    std::int64_t downloaded = 0;
    sim::SimTime unchoke_time = 0;
    int open = 0;  // live unchoked connections for this ordered pair
    sim::SimTime open_since = 0;
  };

  Cell& cell(int from, int to) {
    return cells_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  }
  const Cell& cell(int from, int to) const {
    return cells_[static_cast<std::size_t>(from)][static_cast<std::size_t>(to)];
  }

  // Affinity of one row under an arbitrary labelling (shared by the real and
  // shuffled reducers).
  template <typename LabelFn>
  double affinity_under(int row, LabelFn label) const {
    const Identity& me = identities_[static_cast<std::size_t>(row)];
    const int my_label = label(row);
    if (me.is_seed || my_label < 0) return -1.0;
    sim::SimTime total = 0, same = 0;
    for (std::size_t j = 0; j < identities_.size(); ++j) {
      if (j == static_cast<std::size_t>(row) || identities_[j].is_seed) continue;
      const sim::SimTime t = cell(row, static_cast<int>(j)).unchoke_time;
      total += t;
      if (label(static_cast<int>(j)) == my_label) same += t;
    }
    if (total == 0) return -1.0;
    return static_cast<double>(same) / static_cast<double>(total);
  }

  // Class-aggregate coefficient under an arbitrary labelling.
  double coefficient_under(int bw_class, const std::vector<int>& labels) const {
    if (bw_class < 0) return -1.0;
    sim::SimTime total = 0, same = 0;
    std::size_t class_size = 0, leeches = 0;
    for (std::size_t i = 0; i < identities_.size(); ++i) {
      if (identities_[i].is_seed) continue;
      ++leeches;
      if (labels[i] == bw_class) ++class_size;
    }
    if (class_size == 0 || leeches < 2) return -1.0;
    for (std::size_t i = 0; i < identities_.size(); ++i) {
      if (identities_[i].is_seed || labels[i] != bw_class) continue;
      for (std::size_t j = 0; j < identities_.size(); ++j) {
        if (j == i || identities_[j].is_seed) continue;
        const sim::SimTime t = cell(static_cast<int>(i), static_cast<int>(j)).unchoke_time;
        total += t;
        if (labels[j] == bw_class) same += t;
      }
    }
    if (total == 0) return -1.0;
    const double affinity = static_cast<double>(same) / static_cast<double>(total);
    const double null = static_cast<double>(class_size - 1) / static_cast<double>(leeches - 1);
    if (null >= 1.0) return -1.0;  // one-class swarm: affinity is vacuous
    return (affinity - null) / (1.0 - null);
  }

  double overall_under(const std::vector<int>& labels) const {
    // Weight each class's coefficient by the unchoke time its members spent
    // on leeches, so sparse classes do not dominate the mean.
    double weighted = 0.0, weight = 0.0;
    std::vector<int> seen;
    for (std::size_t i = 0; i < identities_.size(); ++i) {
      const int cls = labels[i];
      if (identities_[i].is_seed || cls < 0) continue;
      if (std::find(seen.begin(), seen.end(), cls) != seen.end()) continue;
      seen.push_back(cls);
      const double coeff = coefficient_under(cls, labels);
      if (coeff <= -1.0) continue;
      double w = 0.0;
      for (std::size_t a = 0; a < identities_.size(); ++a) {
        if (identities_[a].is_seed || labels[a] != cls) continue;
        for (std::size_t b = 0; b < identities_.size(); ++b) {
          if (b == a || identities_[b].is_seed) continue;
          w += static_cast<double>(cell(static_cast<int>(a), static_cast<int>(b)).unchoke_time);
        }
      }
      weighted += coeff * w;
      weight += w;
    }
    return weight <= 0.0 ? -1.0 : weighted / weight;
  }

  std::vector<Identity> identities_;
  std::vector<std::vector<Cell>> cells_;  // [from][to]
  std::unordered_map<std::uint64_t, int> rows_by_id_;
};

}  // namespace wp2p::metrics
