// Background-aware seeding — the paper's stated future work (Section 4.2):
// "LIHD can also be used for controlling the rate of uploads when the mobile
// peer becomes a seed, such that the uploads do not impact negatively any of
// the downloads being performed by other non-P2P applications on the mobile
// peer. We do not consider this aspect of the mechanism in this paper, and
// leave it for future work."
//
// SeedUploadGuard implements that mechanism: it watches a foreground
// (non-P2P) download rate supplied by a probe callback and LIHD-adjusts the
// seeding client's upload limit so that seeding continues at the highest
// rate that leaves the foreground application unharmed. The decision rule is
// the mirror image of LIHD's: uploads back off aggressively when the
// foreground rate degrades, and creep up linearly while it holds.
#pragma once

#include <functional>

#include "bt/client.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace wp2p::core {

struct SeedGuardConfig {
  util::Rate alpha = util::Rate::kBps(10.0);      // upload increment
  util::Rate beta = util::Rate::kBps(10.0);       // decrement base
  util::Rate max_upload = util::Rate::kBps(200.0);
  util::Rate min_upload = util::Rate::kBps(5.0);  // keep contributing a trickle
  sim::SimTime interval = sim::seconds(5.0);
  // The foreground is considered harmed when its rate drops below this
  // fraction of the best rate observed so far.
  double tolerance = 0.9;
};

class SeedUploadGuard {
 public:
  using ForegroundProbe = std::function<util::Rate()>;

  SeedUploadGuard(sim::Simulator& sim, bt::Client& client, ForegroundProbe probe,
                  SeedGuardConfig config = {})
      : client_{client},
        probe_{std::move(probe)},
        config_{config},
        current_{config.max_upload * 0.5},
        task_{sim, config.interval, [this] { update(); }} {}

  void start() {
    client_.set_upload_limit(current_);
    task_.start();
  }
  void stop() { task_.stop(); }

  util::Rate current_limit() const { return current_; }
  double foreground_best() const { return best_foreground_; }
  std::uint64_t backoffs() const { return backoffs_; }

  // One decision, exposed for unit tests: feed the observed foreground rate.
  util::Rate step(util::Rate foreground) {
    const double rate = foreground.bytes_per_sec();
    best_foreground_ = std::max(best_foreground_, rate);
    const bool harmed =
        best_foreground_ > 0.0 && rate < config_.tolerance * best_foreground_;
    if (harmed) {
      ++dec_count_;
      ++backoffs_;
      current_ = current_ - config_.beta * static_cast<double>(dec_count_);
      // The ceiling itself decays: foreground demand may have grown.
      best_foreground_ *= 0.99;
    } else {
      dec_count_ = 0;
      current_ = current_ + config_.alpha;
    }
    current_ = std::clamp(current_, config_.min_upload, config_.max_upload);
    return current_;
  }

 private:
  void update() {
    const util::Rate before = current_;
    const util::Rate after = step(probe_());
    if (after.bytes_per_sec() != before.bytes_per_sec()) client_.set_upload_limit(after);
  }

  bt::Client& client_;
  ForegroundProbe probe_;
  SeedGuardConfig config_;
  util::Rate current_;
  double best_foreground_ = 0.0;
  int dec_count_ = 0;
  std::uint64_t backoffs_ = 0;
  sim::PeriodicTask task_;
};

}  // namespace wp2p::core
