// Linear-Increase History-based-Decrease (LIHD) upload-rate control —
// the rate-adaptation half of wP2P's Incentive-Aware operations (Section 4.2).
//
// On a shared wireless channel, uploads contend with downloads, so the
// tit-for-tat-optimal upload rate is NOT "as high as possible" (Fig. 3b).
// LIHD searches for the smallest upload rate that sustains the maximum
// download rate: it increases the upload limit linearly while downloads keep
// improving, and decreases it with growing aggressiveness while cutting
// uploads costs no download throughput.
//
// Pseudo-code reproduced from the paper's Figure 6:
//   Initialization: Ucur = Uprev = 0.5 * Umax; Dcur = Dprev = 0; Udec_cnt = 0
//   Update:  determine current P2P download rate
//            if Dprev != 0:
//              if Dprev < Dcur:  Ucur += alpha; Udec_cnt = 0
//              else:             Udec_cnt++; Ucur -= beta * Udec_cnt
#pragma once

#include "bt/client.hpp"
#include "sim/simulator.hpp"
#include "util/units.hpp"

namespace wp2p::core {

struct LihdConfig {
  util::Rate alpha = util::Rate::kBps(10.0);  // linear increment (paper: 10 KBps)
  util::Rate beta = util::Rate::kBps(10.0);   // decrement base (paper: 10 KBps)
  util::Rate max_upload = util::Rate::kBps(200.0);  // Umax (physical budget)
  util::Rate min_upload = util::Rate::kBps(5.0);    // never fully mute tit-for-tat
  sim::SimTime interval = sim::seconds(5.0);        // window-averaged update period
};

class LihdController {
 public:
  LihdController(sim::Simulator& sim, bt::Client& client, LihdConfig config = {})
      : client_{client},
        config_{config},
        current_{config.max_upload * 0.5},
        task_{sim, config.interval, [this] { update(); }} {}

  void start() {
    client_.set_upload_limit(current_);
    task_.start();
  }
  void stop() { task_.stop(); }

  util::Rate current_limit() const { return current_; }
  const LihdConfig& config() const { return config_; }
  std::uint64_t updates() const { return updates_; }

  // One LIHD decision given the current window-averaged download rate.
  // Exposed for unit tests and ablations; update() feeds it live rates.
  util::Rate step(util::Rate d_cur) {
    if (d_prev_.bytes_per_sec() != 0.0) {
      if (d_prev_ < d_cur) {
        current_ = current_ + config_.alpha;  // linear increase
        dec_count_ = 0;
      } else {
        ++dec_count_;  // history-based (increasingly aggressive) decrease
        current_ = current_ - config_.beta * static_cast<double>(dec_count_);
      }
      current_ = std::clamp(current_, config_.min_upload, config_.max_upload);
    }
    d_prev_ = d_cur;
    return current_;
  }

 private:
  void update() {
    ++updates_;
    const util::Rate before = current_;
    const util::Rate after = step(client_.download_rate());
    if (after.bytes_per_sec() != before.bytes_per_sec()) client_.set_upload_limit(after);
  }

  bt::Client& client_;
  LihdConfig config_;
  util::Rate current_;
  util::Rate d_prev_ = util::Rate::zero();
  int dec_count_ = 0;
  std::uint64_t updates_ = 0;
  sim::PeriodicTask task_;
};

}  // namespace wp2p::core
