// Linear-Increase History-based-Decrease (LIHD) upload-rate control —
// the rate-adaptation half of wP2P's Incentive-Aware operations (Section 4.2).
//
// On a shared wireless channel, uploads contend with downloads, so the
// tit-for-tat-optimal upload rate is NOT "as high as possible" (Fig. 3b).
// LIHD searches for the smallest upload rate that sustains the maximum
// download rate: it increases the upload limit linearly while downloads keep
// improving, and decreases it with growing aggressiveness while cutting
// uploads costs no download throughput.
//
// Pseudo-code reproduced from the paper's Figure 6:
//   Initialization: Ucur = Uprev = 0.5 * Umax; Dcur = Dprev = 0; Udec_cnt = 0
//   Update:  determine current P2P download rate
//            if Dprev != 0:
//              if Dprev < Dcur:  Ucur += alpha; Udec_cnt = 0
//              else:             Udec_cnt++; Ucur -= beta * Udec_cnt
#pragma once

#include "bt/client.hpp"
#include "sim/simulator.hpp"
#include "trace/recorder.hpp"
#include "util/units.hpp"

namespace wp2p::core {

struct LihdConfig {
  util::Rate alpha = util::Rate::kBps(10.0);  // linear increment (paper: 10 KBps)
  util::Rate beta = util::Rate::kBps(10.0);   // decrement base (paper: 10 KBps)
  util::Rate max_upload = util::Rate::kBps(200.0);  // Umax (physical budget)
  util::Rate min_upload = util::Rate::kBps(5.0);    // never fully mute tit-for-tat
  sim::SimTime interval = sim::seconds(5.0);        // window-averaged update period
};

class LihdController {
 public:
  LihdController(sim::Simulator& sim, bt::Client& client, LihdConfig config = {})
      : sim_{sim},
        client_{client},
        config_{config},
        current_{config.max_upload * 0.5},
        task_{sim, config.interval, [this] { update(); }} {}

  void start() {
    client_.set_upload_limit(current_);
    task_.start();
  }
  void stop() { task_.stop(); }

  util::Rate current_limit() const { return current_; }
  const LihdConfig& config() const { return config_; }
  std::uint64_t updates() const { return updates_; }

  // One LIHD decision given the current window-averaged download rate.
  // Exposed for unit tests and ablations; update() feeds it live rates.
  util::Rate step(util::Rate d_cur) {
    [[maybe_unused]] const char* decision = "seed";  // Dprev == 0: history only
    if (d_prev_.bytes_per_sec() != 0.0) {
      if (d_prev_ < d_cur) {
        current_ = current_ + config_.alpha;  // linear increase
        dec_count_ = 0;
        decision = "increase";
      } else {
        // History-based (increasingly aggressive) decrease. Note the paper's
        // rule treats d_prev == d_cur — e.g. both pegged at link capacity —
        // as "no improvement", so a saturated download walks the limit down
        // until the min_upload clamp catches it (see tests/core/test_lihd).
        ++dec_count_;
        current_ = current_ - config_.beta * static_cast<double>(dec_count_);
        decision = "decrease";
      }
      current_ = std::clamp(current_, config_.min_upload, config_.max_upload);
    }
    WP2P_TRACE(sim_, trace::event(trace::Component::kLihd, trace::Kind::kLihdStep)
                         .at(client_.node().name())
                         .why(decision)
                         .with("limit", current_.bytes_per_sec())
                         .with("d_cur", d_cur.bytes_per_sec())
                         .with("d_prev", d_prev_.bytes_per_sec())
                         .with("dec_count", static_cast<double>(dec_count_))
                         .with("min", config_.min_upload.bytes_per_sec())
                         .with("max", config_.max_upload.bytes_per_sec()));
    d_prev_ = d_cur;
    return current_;
  }

 private:
  void update() {
    ++updates_;
    const util::Rate before = current_;
    const util::Rate after = step(client_.download_rate());
    if (after.bytes_per_sec() != before.bytes_per_sec()) client_.set_upload_limit(after);
  }

  sim::Simulator& sim_;
  bt::Client& client_;
  LihdConfig config_;
  util::Rate current_;
  util::Rate d_prev_ = util::Rate::zero();
  int dec_count_ = 0;
  std::uint64_t updates_ = 0;
  sim::PeriodicTask task_;
};

}  // namespace wp2p::core
