#include "core/am_filter.hpp"

#include "trace/recorder.hpp"

namespace wp2p::core {

namespace {
// The AM filter sits below one host's stack; the host is identified by the
// local endpoint's address, the flow by the full endpoint pair.
[[maybe_unused]] trace::TraceEvent am_event(trace::Kind kind, net::Endpoint local,
                                            net::Endpoint remote) {
  return trace::event(trace::Component::kAm, kind)
      .at(net::to_string(local.addr))
      .on(net::to_string(local) + ">" + net::to_string(remote));
}
}  // namespace

AmFilter::Flow& AmFilter::flow(net::Endpoint local, net::Endpoint remote) {
  FlowKey key{local, remote};
  auto it = flows_.find(key);
  if (it == flows_.end()) {
    it = flows_.emplace(key, Flow{config_.rtt_window}).first;
  }
  return it->second;
}

bool AmFilter::young(Flow& f) {
  return static_cast<std::int64_t>(f.ingress_bytes.sum(sim_.now())) < config_.gamma_bytes;
}

std::int64_t AmFilter::peer_cwnd_estimate(net::Endpoint local, net::Endpoint remote) {
  return static_cast<std::int64_t>(flow(local, remote).ingress_bytes.sum(sim_.now()));
}

bool AmFilter::flow_is_young(net::Endpoint local, net::Endpoint remote) {
  return young(flow(local, remote));
}

void AmFilter::trace_class([[maybe_unused]] Flow& f, [[maybe_unused]] net::Endpoint local,
                           [[maybe_unused]] net::Endpoint remote) {
#ifndef WP2P_TRACE_DISABLED
  if (sim_.tracer() == nullptr) return;
  const bool is_young = young(f);
  const int cls = is_young ? 1 : 0;
  if (cls == f.traced_class) return;
  f.traced_class = cls;
  WP2P_TRACE(sim_, am_event(trace::Kind::kAmClassify, local, remote)
                       .why(is_young ? "young" : "mature")
                       .with("estimate", static_cast<double>(
                                             f.ingress_bytes.sum(sim_.now())))
                       .with("gamma", static_cast<double>(config_.gamma_bytes)));
#endif
}

void AmFilter::ingress(net::Packet pkt, std::vector<net::Packet>& out) {
  if (const auto* seg = pkt.payload_as<tcp::Segment>(); seg != nullptr && seg->payload > 0) {
    // pkt.dst is our endpoint, pkt.src the remote: data from the peer feeds
    // its congestion-window estimate.
    flow(pkt.dst, pkt.src).ingress_bytes.add(sim_.now(), static_cast<double>(seg->payload));
  }
  out.push_back(std::move(pkt));
}

void AmFilter::egress(net::Packet pkt, std::vector<net::Packet>& out) {
  const auto* seg = pkt.payload_as<tcp::Segment>();
  if (seg == nullptr || seg->syn || seg->rst || seg->ack < 0) {
    out.push_back(std::move(pkt));
    return;
  }
  Flow& f = flow(pkt.src, pkt.dst);
  trace_class(f, pkt.src, pkt.dst);

  if (seg->pure_ack()) {
    // A pure ACK that does not advance the flow's ACK point is a DUPACK.
    const bool dup = seg->ack == f.last_egress_ack;
    f.last_egress_ack = std::max(f.last_egress_ack, seg->ack);
    if (dup) {
      ++stats_.dupacks_seen;
      if (config_.throttle_dupacks && !young(f)) {
        ++f.dupack_count;
        if (config_.dupack_drop_modulus > 0 &&
            f.dupack_count % static_cast<std::uint64_t>(config_.dupack_drop_modulus) == 0) {
          ++stats_.dupacks_dropped;
          ++f.dupacks_dropped;
          WP2P_TRACE(sim_, am_event(trace::Kind::kAmDupackDrop, pkt.src, pkt.dst)
                               .with("seen", static_cast<double>(f.dupack_count))
                               .with("dropped", static_cast<double>(f.dupacks_dropped))
                               .with("modulus",
                                     static_cast<double>(config_.dupack_drop_modulus)));
          return;  // drop: the sender still sees 3/4 of the DUPACK stream
        }
        WP2P_TRACE(sim_, am_event(trace::Kind::kAmDupackPass, pkt.src, pkt.dst)
                             .with("seen", static_cast<double>(f.dupack_count))
                             .with("dropped", static_cast<double>(f.dupacks_dropped))
                             .with("modulus",
                                   static_cast<double>(config_.dupack_drop_modulus)));
      }
    }
    out.push_back(std::move(pkt));
    return;
  }

  // Data segment.
  ++stats_.data_packets_seen;
  const bool new_ack_info = seg->ack > f.last_egress_ack;
  f.last_egress_ack = std::max(f.last_egress_ack, seg->ack);
  if (new_ack_info && config_.decouple_acks && young(f)) {
    // Convey the new ACK info in a separate 40-byte pure ACK ahead of the
    // data packet: under bit errors the short packet is far likelier to live.
    auto ack = std::make_shared<tcp::Segment>();
    ack->seq = seg->seq;
    ack->payload = 0;
    ack->ack = seg->ack;
    net::Packet ack_pkt;
    ack_pkt.src = pkt.src;
    ack_pkt.dst = pkt.dst;
    ack_pkt.size = ack->wire_size();
    ack_pkt.payload = std::move(ack);
    ++stats_.acks_decoupled;
    WP2P_TRACE(sim_, am_event(trace::Kind::kAmDecouple, pkt.src, pkt.dst)
                         .with("estimate", static_cast<double>(
                                               f.ingress_bytes.sum(sim_.now())))
                         .with("gamma", static_cast<double>(config_.gamma_bytes))
                         .with("ack", static_cast<double>(seg->ack)));
    out.push_back(std::move(ack_pkt));
  }
  out.push_back(std::move(pkt));
}

}  // namespace wp2p::core
