// Live-peer mobility detection — the deployable half of wP2P's Role Reversal
// (Section 5.1: "The wP2P client monitors the number of live peers, and
// infers mobility by the lack of any live peer. Once mobility is detected,
// the client will immediately attempt to build new connections to remote
// peers to resume serving data.")
//
// Unlike the direct address-change hook (which a client can use when the OS
// exposes interface events), this detector needs nothing but the client's own
// peer table, so it also catches silent losses: AP roaming without an
// interface event, NAT rebinding, or a dead upstream.
#pragma once

#include "bt/client.hpp"
#include "sim/simulator.hpp"
#include "trace/recorder.hpp"

namespace wp2p::core {

struct MobilityDetectorConfig {
  sim::SimTime sample_interval = sim::seconds(5.0);
  // Consecutive zero-peer samples required before declaring mobility; > 1
  // avoids false positives during brief reconnect races.
  int confirm_samples = 2;
};

class MobilityDetector {
 public:
  MobilityDetector(sim::Simulator& sim, bt::Client& client,
                   MobilityDetectorConfig config = {})
      : sim_{sim},
        client_{client},
        config_{config},
        task_{sim, config.sample_interval, [this] { sample(); }} {}

  void start() { task_.start(); }
  void stop() { task_.stop(); }

  std::uint64_t detections() const { return detections_; }
  bool armed() const { return had_peers_; }

 private:
  void sample() {
    if (client_.peer_count() > 0) {
      had_peers_ = true;
      zero_streak_ = 0;
      return;
    }
    if (!had_peers_) return;  // never had a swarm to lose
    if (++zero_streak_ < config_.confirm_samples) return;
    ++detections_;
    had_peers_ = false;
    zero_streak_ = 0;
    WP2P_TRACE(sim_, trace::event(trace::Component::kMob, trace::Kind::kMobDetect)
                         .at(client_.node().name())
                         .with("detections", static_cast<double>(detections_))
                         .with("confirm_samples",
                               static_cast<double>(config_.confirm_samples))
                         .with("interval_us",
                               static_cast<double>(config_.sample_interval)));
    client_.recover_from_disconnection();
  }

  sim::Simulator& sim_;
  bt::Client& client_;
  MobilityDetectorConfig config_;
  bool had_peers_ = false;
  int zero_streak_ = 0;
  std::uint64_t detections_ = 0;
  sim::PeriodicTask task_;
};

}  // namespace wp2p::core
