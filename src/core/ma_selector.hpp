// Mobility-aware Fetching (MF) — half of wP2P's Mobility-Aware operations
// (Section 4.3).
//
// Fetch sequentially with probability 1 - pr and rarest-first with
// probability pr, where pr ("exponentially decreasing selfishness") grows as
// the download progresses: early blocks arrive in playback order so that a
// disconnection still leaves a usable media prefix; late in the download the
// client converges to rarest-first and contributes rare blocks to the swarm.
//
// The paper's evaluation (Section 5.2.3) sets pr equal to the downloaded
// fraction; that is the kLinear schedule. kQuadratic keeps selfishness longer
// ("exponentially increasing altruism"), kConstant is an ablation baseline.
#pragma once

#include <algorithm>
#include <memory>

#include "bt/selector.hpp"

namespace wp2p::core {

enum class PrSchedule {
  kLinear,     // pr = downloaded fraction (the paper's evaluation setting)
  kQuadratic,  // pr = fraction^2: stays sequential longer
  kConstant,   // pr fixed (ablation)
};

struct MaConfig {
  PrSchedule schedule = PrSchedule::kLinear;
  double constant_pr = 0.2;   // used by kConstant
  double initial_pr = 0.0;    // floor applied to every schedule
};

class MobilityAwareSelector final : public bt::PieceSelector {
 public:
  explicit MobilityAwareSelector(MaConfig config = {}) : config_{config} {}

  int pick(const bt::SelectionContext& ctx) override {
    const double pr = rarest_probability(ctx.downloaded_fraction);
    if (ctx.rng.bernoulli(pr)) {
      ++rarest_picks_;
      return rarest_.pick(ctx);
    }
    ++sequential_picks_;
    return sequential_.pick(ctx);
  }

  const char* name() const override { return "mobility-aware"; }

  double rarest_probability(double downloaded_fraction) const {
    double frac = std::clamp(downloaded_fraction, 0.0, 1.0);
    double pr = 0.0;
    switch (config_.schedule) {
      case PrSchedule::kLinear: pr = frac; break;
      case PrSchedule::kQuadratic: pr = frac * frac; break;
      case PrSchedule::kConstant: pr = config_.constant_pr; break;
    }
    return std::clamp(std::max(pr, config_.initial_pr), 0.0, 1.0);
  }

  std::uint64_t rarest_picks() const { return rarest_picks_; }
  std::uint64_t sequential_picks() const { return sequential_picks_; }

 private:
  MaConfig config_;
  bt::RarestFirstSelector rarest_;
  bt::SequentialSelector sequential_;
  std::uint64_t rarest_picks_ = 0;
  std::uint64_t sequential_picks_ = 0;
};

}  // namespace wp2p::core
