// Age-based Manipulation (AM) — wP2P component 1 (Sections 4.1 / 5.1).
//
// A packet filter installed below the mobile host's stack (the analogue of
// the paper's Netfilter module). Per TCP flow it:
//
//  * estimates the REMOTE peer's congestion window as the data bytes received
//    from it over the last RTT-sized window ("a module in the user space
//    keeps track of the amount of data sent by the remote peer in every rtt");
//  * classifies the flow YOUNG (estimate < γ ≈ 9 KB ≈ 6 segments) or MATURE;
//  * while YOUNG, decouples piggybacked ACKs: any outgoing data segment that
//    carries new ACK information is preceded by a duplicate 40-byte pure ACK,
//    so the ACK info survives bit errors that kill the long data packet;
//  * while MATURE, drops one out of every `dupack_drop_modulus` outgoing pure
//    DUPACKs during loss recovery, so the wireless leg actually halves its
//    in-flight packet load after a congestion event (Section 3.2's
//    fast-retransmit pathology).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/filter.hpp"
#include "sim/simulator.hpp"
#include "tcp/segment.hpp"
#include "util/sliding_window.hpp"

namespace wp2p::core {

struct AmConfig {
  std::int64_t gamma_bytes = 9 * 1024;  // YOUNG/MATURE boundary (~6 segments)
  sim::SimTime rtt_window = sim::milliseconds(100.0);  // cwnd estimation window
  int dupack_drop_modulus = 4;  // drop every 4th DUPACK -> one quarter dropped
  bool decouple_acks = true;    // YOUNG-phase ACK decoupling
  bool throttle_dupacks = true;  // MATURE-phase DUPACK dropping
};

struct AmStats {
  std::uint64_t data_packets_seen = 0;
  std::uint64_t acks_decoupled = 0;   // extra pure ACKs injected
  std::uint64_t dupacks_seen = 0;
  std::uint64_t dupacks_dropped = 0;
};

class AmFilter final : public net::PacketFilter {
 public:
  AmFilter(sim::Simulator& sim, AmConfig config = {}) : sim_{sim}, config_{config} {}

  // Outgoing packets from the mobile host: ACK decoupling + DUPACK throttling.
  void egress(net::Packet pkt, std::vector<net::Packet>& out) override;
  // Incoming packets: feed the per-flow peer-cwnd estimator.
  void ingress(net::Packet pkt, std::vector<net::Packet>& out) override;

  const AmStats& stats() const { return stats_; }
  const AmConfig& config() const { return config_; }

  // Estimated peer congestion window for a flow (bytes over the last window);
  // 0 for unknown flows. Exposed for tests and the ablation benches.
  std::int64_t peer_cwnd_estimate(net::Endpoint local, net::Endpoint remote);
  bool flow_is_young(net::Endpoint local, net::Endpoint remote);

 private:
  struct FlowKey {
    net::Endpoint local;
    net::Endpoint remote;
    bool operator==(const FlowKey&) const = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const noexcept {
      return std::hash<net::Endpoint>{}(k.local) * 31 ^ std::hash<net::Endpoint>{}(k.remote);
    }
  };
  struct Flow {
    explicit Flow(sim::SimTime window) : ingress_bytes{window} {}
    util::WindowedSum ingress_bytes;  // data bytes from the peer (cwnd estimate)
    std::int64_t last_egress_ack = -1;
    std::uint64_t dupack_count = 0;
    std::uint64_t dupacks_dropped = 0;
    int traced_class = -1;  // last young(1)/mature(0) classification emitted
  };

  Flow& flow(net::Endpoint local, net::Endpoint remote);
  bool young(Flow& f);
  // Emits a kAmClassify event when the flow's young/mature classification
  // flips (no-op unless a tracer is installed).
  void trace_class(Flow& f, net::Endpoint local, net::Endpoint remote);

  sim::Simulator& sim_;
  AmConfig config_;
  AmStats stats_;
  std::unordered_map<FlowKey, Flow, FlowKeyHash> flows_;
};

}  // namespace wp2p::core
