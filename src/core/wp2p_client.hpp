// WP2PClient — the integrated wireless P2P client (the paper's contribution).
//
// Composes the three wP2P design principles on top of the unmodified
// BitTorrent client (src/bt):
//
//   AM  (Age-based Manipulation)   — packet filter below the stack
//   IA  (Incentive-Aware)          — LIHD upload control + peer-id retention
//   MA  (Mobility-Aware)           — MF piece selection + role reversal
//
// Every mechanism is local to the mobile host and fully backward compatible:
// remote peers run the plain bt::Client unchanged.
#pragma once

#include <memory>

#include "bt/client.hpp"
#include "core/am_filter.hpp"
#include "core/lihd.hpp"
#include "core/ma_selector.hpp"
#include "core/mobility_detector.hpp"

namespace wp2p::core {

struct WP2PConfig {
  bool age_based_manipulation = true;
  bool incentive_aware = true;  // LIHD + identity retention
  bool mobility_aware = true;   // MF + role reversal + live-peer detection
  AmConfig am;
  LihdConfig lihd;
  MaConfig ma;
  MobilityDetectorConfig detector;
  bt::ClientConfig base;  // knobs of the underlying BitTorrent client
};

class WP2PClient {
 public:
  WP2PClient(net::Node& node, tcp::Stack& stack, bt::Tracker& tracker,
             const bt::Metainfo& meta, WP2PConfig config = {}, bool start_as_seed = false)
      : config_{config} {
    bt::ClientConfig base = config.base;
    if (config_.incentive_aware) base.retain_peer_id = true;
    if (config_.mobility_aware) base.role_reversal = true;
    client_ = std::make_unique<bt::Client>(node, stack, tracker, meta, base, start_as_seed);
    if (config_.mobility_aware) {
      auto selector = std::make_unique<MobilityAwareSelector>(config_.ma);
      ma_selector_ = selector.get();
      client_->set_selector(std::move(selector));
    }
    if (config_.age_based_manipulation) {
      am_ = std::make_unique<AmFilter>(node.sim(), config_.am);
      node.add_egress_filter(am_.get());
      node.add_ingress_filter(am_.get());
    }
    if (config_.incentive_aware) {
      lihd_ = std::make_unique<LihdController>(node.sim(), *client_, config_.lihd);
    }
    if (config_.mobility_aware) {
      detector_ =
          std::make_unique<MobilityDetector>(node.sim(), *client_, config_.detector);
    }
  }

  void start() {
    client_->start();
    if (lihd_) lihd_->start();
    if (detector_) detector_->start();
  }

  void stop() {
    if (detector_) detector_->stop();
    if (lihd_) lihd_->stop();
    client_->stop();
  }

  bt::Client& client() { return *client_; }
  const bt::Client& client() const { return *client_; }
  bt::Client* operator->() { return client_.get(); }

  AmFilter* am() { return am_.get(); }
  LihdController* lihd() { return lihd_.get(); }
  MobilityAwareSelector* ma_selector() { return ma_selector_; }
  MobilityDetector* detector() { return detector_.get(); }
  const WP2PConfig& config() const { return config_; }

 private:
  WP2PConfig config_;
  std::unique_ptr<bt::Client> client_;
  std::unique_ptr<AmFilter> am_;
  std::unique_ptr<LihdController> lihd_;
  std::unique_ptr<MobilityDetector> detector_;
  MobilityAwareSelector* ma_selector_ = nullptr;  // owned by the client
};

}  // namespace wp2p::core
