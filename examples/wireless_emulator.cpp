// Scenario-driven wireless P2P emulator (the repo's answer to the paper's
// ns-2 emulation testbed, Fig. 10). Reads a scenario script, builds the
// swarm, injects mobility/disconnection events, and reports progress.
//
// Usage:
//   ./build/examples/wireless_emulator examples/scenarios/handoff.scn
//   ./build/examples/wireless_emulator            (runs a built-in demo)
//
// Scenario grammar (one directive per line, '#' comments):
//   seed <n>                                     deterministic RNG seed
//   file <size> [piece <size>]                   sizes accept KB/MB suffixes
//   host <name> wired|wireless seed|leech|wp2p [key=value ...]
//        keys: up, down, capacity (rates, e.g. 100KBps or 4Mbps),
//              ber (e.g. 1e-5), preload (0..1), slots, announce (seconds)
//   mobility <name> every <seconds>              periodic IP change
//   disconnect <name> at <seconds>               one-shot link loss
//   reconnect <name> at <seconds>
//   run <seconds> [report <seconds>]
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/wp2p_client.hpp"
#include "exp/world.hpp"
#include "media/playability.hpp"

namespace {

using namespace wp2p;

[[noreturn]] void fail(const std::string& message) {
  std::fprintf(stderr, "scenario error: %s\n", message.c_str());
  std::exit(1);
}

std::int64_t parse_size(std::string token) {
  double multiplier = 1.0;
  if (token.size() > 2 && (token.ends_with("MB") || token.ends_with("mb"))) {
    multiplier = 1e6;
    token.resize(token.size() - 2);
  } else if (token.size() > 2 && (token.ends_with("KB") || token.ends_with("kb"))) {
    multiplier = 1e3;
    token.resize(token.size() - 2);
  }
  return static_cast<std::int64_t>(std::stod(token) * multiplier);
}

util::Rate parse_rate(std::string token) {
  if (token.ends_with("KBps")) {
    return util::Rate::kBps(std::stod(token.substr(0, token.size() - 4)));
  }
  if (token.ends_with("Mbps")) {
    return util::Rate::mbps(std::stod(token.substr(0, token.size() - 4)));
  }
  if (token.ends_with("Kbps") || token.ends_with("kbps")) {
    return util::Rate::kbps(std::stod(token.substr(0, token.size() - 4)));
  }
  fail("unknown rate: " + token + " (use e.g. 100KBps, 384Kbps, 4Mbps)");
}

struct HostSpec {
  std::string name;
  bool wireless = false;
  enum class Role { kSeed, kLeech, kWp2p } role = Role::kLeech;
  std::map<std::string, std::string> options;
};

struct Event {
  double at_seconds = 0.0;
  std::string action;  // "disconnect" | "reconnect"
  std::string host;
};

struct Mobility {
  std::string host;
  double interval_seconds = 0.0;
};

struct Scenario {
  std::uint64_t seed = 1;
  std::int64_t file_size = 16 * 1000 * 1000;
  std::int64_t piece_size = 256 * 1024;
  std::vector<HostSpec> hosts;
  std::vector<Mobility> mobility;
  std::vector<Event> events;
  double run_seconds = 300.0;
  double report_seconds = 30.0;
};

Scenario parse(std::istream& in) {
  Scenario scenario;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream ss{line};
    std::string cmd;
    if (!(ss >> cmd)) continue;
    auto want = [&](const char* what) -> std::string {
      std::string token;
      if (!(ss >> token)) fail(std::string{"line "} + std::to_string(line_no) +
                               ": expected " + what);
      return token;
    };
    if (cmd == "seed") {
      scenario.seed = std::stoull(want("seed value"));
    } else if (cmd == "file") {
      scenario.file_size = parse_size(want("file size"));
      std::string kw;
      if (ss >> kw) {
        if (kw != "piece") fail("expected 'piece'");
        scenario.piece_size = parse_size(want("piece size"));
      }
    } else if (cmd == "host") {
      HostSpec host;
      host.name = want("host name");
      const std::string link = want("link type");
      if (link == "wireless") {
        host.wireless = true;
      } else if (link != "wired") {
        fail("link must be wired|wireless: " + link);
      }
      const std::string role = want("role");
      if (role == "seed") {
        host.role = HostSpec::Role::kSeed;
      } else if (role == "leech") {
        host.role = HostSpec::Role::kLeech;
      } else if (role == "wp2p") {
        host.role = HostSpec::Role::kWp2p;
      } else {
        fail("role must be seed|leech|wp2p: " + role);
      }
      std::string opt;
      while (ss >> opt) {
        auto eq = opt.find('=');
        if (eq == std::string::npos) fail("option must be key=value: " + opt);
        host.options[opt.substr(0, eq)] = opt.substr(eq + 1);
      }
      scenario.hosts.push_back(std::move(host));
    } else if (cmd == "mobility") {
      Mobility m;
      m.host = want("host name");
      if (want("'every'") != "every") fail("expected 'every'");
      m.interval_seconds = std::stod(want("interval"));
      scenario.mobility.push_back(std::move(m));
    } else if (cmd == "disconnect" || cmd == "reconnect") {
      Event event;
      event.action = cmd;
      event.host = want("host name");
      if (want("'at'") != "at") fail("expected 'at'");
      event.at_seconds = std::stod(want("time"));
      scenario.events.push_back(std::move(event));
    } else if (cmd == "run") {
      scenario.run_seconds = std::stod(want("duration"));
      std::string kw;
      if (ss >> kw) {
        if (kw != "report") fail("expected 'report'");
        scenario.report_seconds = std::stod(want("report interval"));
      }
    } else {
      fail("unknown directive: " + cmd);
    }
  }
  if (scenario.hosts.empty()) fail("no hosts declared");
  return scenario;
}

struct RunningHost {
  std::string name;
  exp::World::Host* host = nullptr;
  std::unique_ptr<bt::Client> plain;
  std::unique_ptr<core::WP2PClient> wp2p;
  bt::Client& client() { return wp2p ? wp2p->client() : *plain; }
};

void run(const Scenario& scenario) {
  exp::World world{scenario.seed};
  bt::Tracker tracker{world.sim};
  auto meta =
      bt::Metainfo::create("content", scenario.file_size, scenario.piece_size, "tracker",
                           scenario.seed);
  std::printf("scenario: %lld-byte file, %d pieces, %zu hosts, seed %llu\n\n",
              static_cast<long long>(meta.total_size), meta.piece_count(),
              scenario.hosts.size(), static_cast<unsigned long long>(scenario.seed));

  std::vector<std::unique_ptr<RunningHost>> hosts;
  for (const HostSpec& spec : scenario.hosts) {
    auto running = std::make_unique<RunningHost>();
    running->name = spec.name;
    auto opt = [&](const char* key) -> const std::string* {
      auto it = spec.options.find(key);
      return it == spec.options.end() ? nullptr : &it->second;
    };
    if (spec.wireless) {
      net::WirelessParams wless;
      if (const auto* v = opt("capacity")) wless.capacity = parse_rate(*v);
      if (const auto* v = opt("ber")) wless.bit_error_rate = std::stod(*v);
      running->host = &world.add_wireless_host(spec.name, wless);
    } else {
      net::WiredParams wired;
      if (const auto* v = opt("up")) wired.up_capacity = parse_rate(*v);
      if (const auto* v = opt("down")) wired.down_capacity = parse_rate(*v);
      running->host = &world.add_wired_host(spec.name, wired);
    }
    bt::ClientConfig config;
    config.announce_interval = sim::seconds(60.0);
    if (const auto* v = opt("announce")) config.announce_interval = sim::seconds(std::stod(*v));
    if (const auto* v = opt("slots")) config.unchoke_slots = std::stoi(*v);
    if (const auto* v = opt("uplimit")) config.upload_limit = parse_rate(*v);
    const bool is_seed = spec.role == HostSpec::Role::kSeed;
    if (spec.role == HostSpec::Role::kWp2p) {
      core::WP2PConfig wcfg;
      wcfg.base = config;
      running->wp2p = std::make_unique<core::WP2PClient>(
          *running->host->node, *running->host->stack, tracker, meta, wcfg, is_seed);
    } else {
      running->plain = std::make_unique<bt::Client>(
          *running->host->node, *running->host->stack, tracker, meta, config, is_seed);
    }
    if (const auto* v = opt("preload")) running->client().preload(std::stod(*v));
    hosts.push_back(std::move(running));
  }

  auto find_host = [&](const std::string& name) -> RunningHost& {
    for (auto& h : hosts) {
      if (h->name == name) return *h;
    }
    fail("unknown host: " + name);
  };

  // Start clients, arm mobility and one-shot events.
  for (auto& h : hosts) {
    if (h->wp2p) {
      h->wp2p->start();
    } else {
      h->plain->start();
    }
  }
  std::vector<std::unique_ptr<sim::PeriodicTask>> mobility_tasks;
  for (const Mobility& m : scenario.mobility) {
    net::Node* node = find_host(m.host).host->node;
    auto task = std::make_unique<sim::PeriodicTask>(
        world.sim, sim::seconds(m.interval_seconds), [node] { node->change_address(); });
    task->start();
    mobility_tasks.push_back(std::move(task));
  }
  for (const Event& event : scenario.events) {
    net::Node* node = find_host(event.host).host->node;
    const bool connect = event.action == "reconnect";
    world.sim.at(sim::seconds(event.at_seconds),
                 [node, connect] { node->set_connected(connect); });
  }

  // Run with periodic reports.
  std::printf("%8s", "t(s)");
  for (auto& h : hosts) std::printf("  %16s", h->name.c_str());
  std::printf("\n");
  for (double t = scenario.report_seconds; t <= scenario.run_seconds + 1e-9;
       t += scenario.report_seconds) {
    world.sim.run_until(sim::seconds(t));
    std::printf("%8.0f", t);
    for (auto& h : hosts) {
      char cell[64];
      std::snprintf(cell, sizeof cell, "%5.1f%% %6.1fKB/s",
                    h->client().store().completed_fraction() * 100.0,
                    h->client().download_rate().kilobytes_per_sec());
      std::printf("  %16s", cell);
    }
    std::printf("\n");
  }

  std::printf("\nfinal state:\n");
  for (auto& h : hosts) {
    bt::Client& c = h->client();
    std::printf("  %-10s %6.1f%% complete, playable %5.1f%%, down %lld, up %lld, "
                "reinits %llu, peers %zu\n",
                h->name.c_str(), c.store().completed_fraction() * 100.0,
                media::PlayabilityAnalyzer::playable_fraction(c.store()) * 100.0,
                static_cast<long long>(c.stats().payload_downloaded),
                static_cast<long long>(c.stats().payload_uploaded),
                static_cast<unsigned long long>(c.stats().task_reinitiations),
                c.peer_count());
  }
}

constexpr const char* kDemoScenario = R"(
# Built-in demo: a mobile wP2P host vs a default mobile leech, one seed.
seed 11
file 32MB piece 256KB
host origin wired seed uplimit=150KBps
host helper wired leech uplimit=40KBps preload=0.4
host laptop wireless wp2p capacity=300KBps ber=1e-6
host phone wireless leech capacity=300KBps ber=1e-6
mobility laptop every 120
mobility phone every 120
run 600 report 60
)";

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc > 1) {
      std::ifstream in{argv[1]};
      if (!in) fail(std::string{"cannot open "} + argv[1]);
      run(parse(in));
    } else {
      std::printf("(no scenario file given: running the built-in demo)\n\n");
      std::istringstream in{kDemoScenario};
      run(parse(in));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
