// Metainfo tooling: create a .torrent, write it to disk, parse it back, and
// inspect the bencoded structure — exercising the bencode and metainfo APIs.
//
// Run: ./build/examples/make_torrent [output.torrent]
#include <cstdio>
#include <fstream>

#include "bt/bencode.hpp"
#include "bt/metainfo.hpp"

int main(int argc, char** argv) {
  using namespace wp2p::bt;
  const char* path = argc > 1 ? argv[1] : "example.torrent";

  // Create a metainfo for synthetic content and encode it.
  Metainfo meta = Metainfo::create("fedora-7-live.iso", 688 * 1000 * 1000, 256 * 1024,
                                   "tracker.example", /*content_id=*/7);
  const std::string encoded = meta.encode();
  {
    std::ofstream out{path, std::ios::binary};
    out << encoded;
  }
  std::printf("wrote %s (%zu bytes of bencode)\n", path, encoded.size());

  // Read it back and verify the round trip.
  std::string data;
  {
    std::ifstream in{path, std::ios::binary};
    data.assign(std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{});
  }
  Metainfo parsed = Metainfo::decode(data);
  std::printf("\nparsed metainfo:\n");
  std::printf("  name:          %s\n", parsed.name.c_str());
  std::printf("  announce:      %s\n", parsed.announce.c_str());
  std::printf("  total size:    %lld bytes\n", static_cast<long long>(parsed.total_size));
  std::printf("  piece length:  %lld bytes\n", static_cast<long long>(parsed.piece_length));
  std::printf("  pieces:        %d (last piece %lld bytes)\n", parsed.piece_count(),
              static_cast<long long>(parsed.piece_size(parsed.piece_count() - 1)));
  std::printf("  info hash:     %016llx\n",
              static_cast<unsigned long long>(parsed.info_hash));
  std::printf("  round trip ok: %s\n",
              parsed.info_hash == meta.info_hash && parsed.piece_hashes == meta.piece_hashes
                  ? "yes"
                  : "NO");

  // Peek at the raw bencode structure.
  Bencode root = Bencode::decode(data);
  std::printf("\nbencode top-level keys:");
  for (const auto& [key, value] : root.as_dict()) std::printf(" %s", key.c_str());
  std::printf("\ninfo dict keys:");
  for (const auto& [key, value] : root.at("info").as_dict()) std::printf(" %s", key.c_str());
  std::printf("\n");
  return 0;
}
