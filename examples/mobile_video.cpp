// Mobile video scenario (the paper's Section 3.6 motivation): a commuter
// downloads a 100 MB video over WLAN and loses connectivity at 60% progress.
// With rarest-first fetching almost none of the video is watchable offline;
// with wP2P's Mobility-aware Fetching a long in-order prefix survives.
//
// Run: ./build/examples/mobile_video
#include <cstdio>

#include "bt/client.hpp"
#include "bt/tracker.hpp"
#include "core/ma_selector.hpp"
#include "exp/world.hpp"
#include "media/playability.hpp"

namespace {

struct Outcome {
  double downloaded_pct = 0.0;
  double playable_pct = 0.0;
  double playable_minutes = 0.0;
};

Outcome run(bool use_wp2p_mf) {
  using namespace wp2p;
  exp::World world{2024};
  bt::Tracker tracker{world.sim};
  // A 2-hour movie: 100 MB -> ~0.83 MB per playable minute.
  const double total_minutes = 120.0;
  auto meta = bt::Metainfo::create("movie.mpg", 100 * 1000 * 1000, 256 * 1024);

  bt::ClientConfig config;
  config.announce_interval = sim::seconds(60.0);
  exp::World::Host& seed_host = world.add_wired_host("seed");
  bt::Client seed{*seed_host.node, *seed_host.stack, tracker, meta, config, true};
  seed.set_upload_limit(util::Rate::kBps(250.0));

  exp::World::Host& mobile_host = world.add_wireless_host("laptop");
  bt::Client viewer{*mobile_host.node, *mobile_host.stack, tracker, meta, config, false};
  if (use_wp2p_mf) {
    viewer.set_selector(std::make_unique<core::MobilityAwareSelector>());
  }

  seed.start();
  viewer.start();
  // Ride until 60% downloaded, then the train enters a tunnel for good.
  while (viewer.store().completed_fraction() < 0.60 &&
         world.sim.now() < sim::minutes(60.0)) {
    world.sim.run_until(world.sim.now() + sim::seconds(1.0));
  }
  mobile_host.node->set_connected(false);
  world.sim.run_until(world.sim.now() + sim::seconds(30.0));  // in-flight data dies

  Outcome out;
  out.downloaded_pct = viewer.store().completed_fraction() * 100.0;
  out.playable_pct =
      wp2p::media::PlayabilityAnalyzer::playable_fraction(viewer.store()) * 100.0;
  out.playable_minutes = total_minutes * out.playable_pct / 100.0;
  return out;
}

}  // namespace

int main() {
  std::printf("Scenario: 120-minute video (100 MB), connection lost at ~60%% downloaded\n\n");
  Outcome rarest = run(false);
  Outcome mf = run(true);
  std::printf("%-22s %12s %12s %18s\n", "client", "downloaded", "playable",
              "watchable offline");
  std::printf("%-22s %11.1f%% %11.1f%% %15.1f min\n", "default (rarest-first)",
              rarest.downloaded_pct, rarest.playable_pct, rarest.playable_minutes);
  std::printf("%-22s %11.1f%% %11.1f%% %15.1f min\n", "wP2P (mobility-aware)",
              mf.downloaded_pct, mf.playable_pct, mf.playable_minutes);
  std::printf("\nSame bytes spent; wP2P keeps the prefix in order, so the commute is "
              "not wasted.\n");
  return 0;
}
