// Commuter hand-off scenario (Sections 3.4 / 5.2.2): a laptop hops between
// access points every 90 seconds while downloading a Linux image from a
// swarm. The default client re-joins as a stranger after every hand-off and
// forfeits its tit-for-tat standing; the full wP2P client retains its
// identity and reconnects instantly via role reversal.
//
// Run: ./build/examples/commuter_handoff
#include <cstdio>
#include <memory>
#include <vector>

#include "core/wp2p_client.hpp"
#include "exp/world.hpp"

namespace {

struct Sample {
  double minutes;
  double default_mb;
  double wp2p_mb;
};

}  // namespace

int main() {
  using namespace wp2p;
  const double horizon_min = 30.0;

  auto run = [&](bool use_wp2p) {
    exp::World world{7};
    bt::Tracker tracker{world.sim};
    auto meta = bt::Metainfo::create("distro.iso", 688 * 1000 * 1000, 256 * 1024);

    // Fixed swarm: one seed plus ten home-link leechers with partial content.
    bt::ClientConfig fixed_config;
    fixed_config.announce_interval = sim::minutes(2.0);
    fixed_config.unchoke_slots = 2;
    std::vector<std::unique_ptr<bt::Client>> fixed;
    {
      bt::ClientConfig sc = fixed_config;
      sc.upload_limit = util::Rate::kBps(40.0);
      auto& host = world.add_wired_host("seed");
      fixed.push_back(
          std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, sc, true));
    }
    for (int i = 0; i < 10; ++i) {
      bt::ClientConfig lc = fixed_config;
      lc.upload_limit = util::Rate::kBps(40.0);
      auto& host = world.add_wired_host("leech" + std::to_string(i));
      fixed.push_back(
          std::make_unique<bt::Client>(*host.node, *host.stack, tracker, meta, lc, false));
      fixed.back()->preload(0.1 + 0.05 * i);
    }

    // The commuter's laptop.
    exp::World::Host& laptop = world.add_wireless_host("laptop");
    std::unique_ptr<bt::Client> plain;
    std::unique_ptr<core::WP2PClient> wp2p;
    bt::Client* client = nullptr;
    if (use_wp2p) {
      core::WP2PConfig config;
      config.base = fixed_config;
      config.base.upload_limit = util::Rate::kBps(60.0);
      config.lihd.max_upload = util::Rate::kBps(120.0);
      wp2p = std::make_unique<core::WP2PClient>(*laptop.node, *laptop.stack, tracker,
                                                meta, config);
      client = &wp2p->client();
    } else {
      bt::ClientConfig mc = fixed_config;
      mc.upload_limit = util::Rate::kBps(60.0);
      plain = std::make_unique<bt::Client>(*laptop.node, *laptop.stack, tracker, meta,
                                           mc, false);
      client = plain.get();
    }

    for (auto& c : fixed) c->start();
    if (wp2p) {
      wp2p->start();
    } else {
      plain->start();
    }
    // Hand-offs every 90 seconds.
    sim::PeriodicTask handoffs{world.sim, sim::seconds(90.0),
                               [&] { laptop.node->change_address(); }};
    handoffs.start();

    std::vector<double> mb;
    for (int m = 5; m <= static_cast<int>(horizon_min); m += 5) {
      world.sim.run_until(sim::minutes(m));
      mb.push_back(static_cast<double>(client->stats().payload_downloaded) / 1e6);
    }
    std::printf("  %s: %llu hand-offs handled, %llu task re-initiations\n",
                use_wp2p ? "wP2P   " : "default",
                static_cast<unsigned long long>(laptop.node->address_changes()),
                static_cast<unsigned long long>(client->stats().task_reinitiations));
    return mb;
  };

  std::printf("Scenario: AP hand-off every 90 s while downloading a 688 MB image\n\n");
  auto def = run(false);
  auto wp = run(true);

  std::printf("\n%8s %14s %14s\n", "t (min)", "default (MB)", "wP2P (MB)");
  for (std::size_t i = 0; i < def.size(); ++i) {
    std::printf("%8.0f %14.1f %14.1f\n", 5.0 * static_cast<double>(i + 1), def[i], wp[i]);
  }
  std::printf("\nwP2P finished the ride %.1fx ahead.\n",
              wp.back() / (def.back() > 0 ? def.back() : 1.0));
  return 0;
}
