// Quickstart: a seed and a wP2P mobile client exchanging a file over the
// simulated network.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/wp2p_client.hpp"
#include "exp/world.hpp"
#include "media/playability.hpp"

int main() {
  using namespace wp2p;

  // 1. A world: virtual clock + network cloud. Everything is deterministic
  //    given the seed.
  exp::World world{/*seed=*/42};
  bt::Tracker tracker{world.sim};

  // 2. Describe the content: a 16 MB file in 256 KiB pieces.
  auto meta = bt::Metainfo::create("example.mpg", 16 * 1000 * 1000, 256 * 1024);
  std::printf("torrent: %s, %lld bytes, %d pieces, info-hash %016llx\n",
              meta.name.c_str(), static_cast<long long>(meta.total_size),
              meta.piece_count(), static_cast<unsigned long long>(meta.info_hash));

  // 3. A fixed seed behind a residential cable link.
  net::WiredParams cable;
  cable.down_capacity = util::Rate::mbps(4.0);
  cable.up_capacity = util::Rate::kbps(384.0);
  exp::World::Host& seed_host = world.add_wired_host("seed", cable);
  bt::ClientConfig seed_config;
  seed_config.announce_interval = sim::seconds(60.0);
  bt::Client seed{*seed_host.node, *seed_host.stack, tracker, meta, seed_config,
                  /*start_as_seed=*/true};

  // 4. A mobile host behind an emulated WLAN, running the full wP2P client
  //    (AM packet filter + LIHD + identity retention + MF + role reversal).
  net::WirelessParams wlan;
  wlan.capacity = util::Rate::kBps(300.0);
  wlan.bit_error_rate = 1e-6;
  exp::World::Host& mobile_host = world.add_wireless_host("mobile", wlan);
  core::WP2PConfig config;
  config.base.announce_interval = sim::seconds(60.0);
  core::WP2PClient mobile{*mobile_host.node, *mobile_host.stack, tracker, meta, config};

  // 5. Go. Print a progress line per simulated 10 seconds.
  seed.start();
  mobile.start();
  while (!mobile.client().complete() && world.sim.now() < sim::minutes(30.0)) {
    world.sim.run_until(world.sim.now() + sim::seconds(10.0));
    std::printf("t=%5.0fs  downloaded %5.1f%%  playable %5.1f%%  rate %6.1f KBps  "
                "peers %zu\n",
                sim::to_seconds(world.sim.now()),
                mobile.client().store().completed_fraction() * 100.0,
                media::PlayabilityAnalyzer::playable_fraction(mobile.client().store()) * 100.0,
                mobile.client().download_rate().kilobytes_per_sec(),
                mobile.client().peer_count());
  }

  std::printf("\ncomplete in %.1f simulated seconds\n", sim::to_seconds(world.sim.now()));
  std::printf("downloaded %lld bytes, uploaded %lld bytes, %llu pieces\n",
              static_cast<long long>(mobile.client().stats().payload_downloaded),
              static_cast<long long>(mobile.client().stats().payload_uploaded),
              static_cast<unsigned long long>(mobile.client().stats().pieces_completed));
  std::printf("AM filter: %llu ACKs decoupled, %llu DUPACKs dropped\n",
              static_cast<unsigned long long>(mobile.am()->stats().acks_decoupled),
              static_cast<unsigned long long>(mobile.am()->stats().dupacks_dropped));
  std::printf("LIHD upload limit settled at %.1f KBps\n",
              mobile.lihd()->current_limit().kilobytes_per_sec());
  return 0;
}
